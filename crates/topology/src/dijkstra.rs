use crate::UnitDiskGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Lexicographic node-weighted path cost used by the Coolest-path baseline
/// (Huang et al., ICDCS 2011): minimize **accumulated** weight first, then
/// the **highest** single weight on the path, then hop count.
///
/// Weights must be finite and non-negative.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathCost {
    /// Sum of node weights along the path (root excluded, endpoint
    /// included) — "accumulated spectrum temperature".
    pub sum: f64,
    /// Maximum node weight along the path — "highest spectrum temperature".
    pub max: f64,
    /// Number of hops.
    pub hops: u32,
}

impl PathCost {
    /// Cost of the empty path at the root.
    pub const ZERO: PathCost = PathCost {
        sum: 0.0,
        max: 0.0,
        hops: 0,
    };

    /// The cost after extending this path by a node of weight `w`.
    #[must_use]
    pub fn extend(self, w: f64) -> PathCost {
        PathCost {
            sum: self.sum + w,
            max: self.max.max(w),
            hops: self.hops + 1,
        }
    }
}

impl Eq for PathCost {}

impl PartialOrd for PathCost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PathCost {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other, PathOrder::AccumulatedFirst)
    }
}

impl PathCost {
    /// Compares two costs under the chosen lexicographic order.
    #[must_use]
    pub fn compare(&self, other: &Self, order: PathOrder) -> Ordering {
        match order {
            PathOrder::AccumulatedFirst => self
                .sum
                .total_cmp(&other.sum)
                .then_with(|| self.max.total_cmp(&other.max))
                .then_with(|| self.hops.cmp(&other.hops)),
            PathOrder::PeakFirst => self
                .max
                .total_cmp(&other.max)
                .then_with(|| self.sum.total_cmp(&other.sum))
                .then_with(|| self.hops.cmp(&other.hops)),
        }
    }
}

/// Which lexicographic order ranks paths.
///
/// Coolest Path's metrics admit two natural readings, and the ADDC paper's
/// baseline says "the path with the **most balanced** and/or the lowest
/// spectrum utilization by PUs is preferred":
///
/// - [`PathOrder::AccumulatedFirst`] minimizes total temperature first —
///   close to shortest-path routing when temperatures are uniform,
/// - [`PathOrder::PeakFirst`] minimizes the hottest node first ("most
///   balanced") — it detours arbitrarily far to shave the peak, which is
///   what concentrates many SUs onto the same cool corridor and produces
///   the data-accumulation effect the paper attributes to Coolest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathOrder {
    /// `(sum, max, hops)`.
    AccumulatedFirst,
    /// `(max, sum, hops)`.
    PeakFirst,
}

/// Computes a node-weighted shortest-path tree of `graph` rooted at `root`
/// under the [`PathCost`] order, returning per-node parents (toward the
/// root) and costs.
///
/// Unreachable nodes get parent `None` and cost `None`; ties beyond the
/// full lexicographic cost are broken by smaller parent id, so the result
/// is deterministic.
///
/// # Panics
///
/// Panics if `root` is out of range, `weights.len() != graph.len()`, or any
/// weight is negative or non-finite.
///
/// # Example
///
/// ```
/// use crn_geometry::{Deployment, Point, Region};
/// use crn_topology::{dijkstra_tree, UnitDiskGraph};
///
/// // Line 0-1-2; node 1 is "hot" but it is the only route.
/// let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let g = UnitDiskGraph::build(&Deployment::from_points(Region::new(3.0, 1.0), pts), 1.1);
/// let (parents, costs) = dijkstra_tree(&g, 0, &[0.0, 0.9, 0.1]);
/// assert_eq!(parents, vec![None, Some(0), Some(1)]);
/// assert!((costs[2].unwrap().sum - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn dijkstra_tree(
    graph: &UnitDiskGraph,
    root: u32,
    weights: &[f64],
) -> (Vec<Option<u32>>, Vec<Option<PathCost>>) {
    dijkstra_tree_by(graph, root, weights, PathOrder::AccumulatedFirst)
}

/// [`dijkstra_tree`] with an explicit [`PathOrder`] (the Coolest baseline
/// uses [`PathOrder::PeakFirst`]).
///
/// # Panics
///
/// Same conditions as [`dijkstra_tree`].
#[must_use]
pub fn dijkstra_tree_by(
    graph: &UnitDiskGraph,
    root: u32,
    weights: &[f64],
    order: PathOrder,
) -> (Vec<Option<u32>>, Vec<Option<PathCost>>) {
    assert_eq!(
        weights.len(),
        graph.len(),
        "one weight per node required ({} != {})",
        weights.len(),
        graph.len()
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let n = graph.len();
    let mut parent: Vec<Option<u32>> = vec![None; n];
    let mut best: Vec<Option<PathCost>> = vec![None; n];
    if n == 0 {
        return (parent, best);
    }
    assert!(
        (root as usize) < n,
        "root {root} out of range for {n} nodes"
    );

    // Max-heap on Reverse((cost, node, via)); each entry carries the
    // active order so the heap's Ord can apply it.
    #[derive(PartialEq, Eq)]
    struct Entry(PathCost, u32, Option<u32>, PathOrder);
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for a min-heap; prefer smaller parent id on cost ties.
            other
                .0
                .compare(&self.0, self.3)
                .then_with(|| other.2.cmp(&self.2))
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Entry(PathCost::ZERO, root, None, order));
    while let Some(Entry(cost, u, via, _)) = heap.pop() {
        if best[u as usize].is_some() {
            continue;
        }
        best[u as usize] = Some(cost);
        parent[u as usize] = via;
        for &v in graph.neighbors(u) {
            if best[v as usize].is_none() {
                heap.push(Entry(cost.extend(weights[v as usize]), v, Some(u), order));
            }
        }
    }
    (parent, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_geometry::{Deployment, Point, Region};
    use rand::SeedableRng;

    fn grid_graph(k: usize) -> UnitDiskGraph {
        let mut pts = Vec::new();
        for y in 0..k {
            for x in 0..k {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        UnitDiskGraph::build(&Deployment::from_points(Region::square(k as f64), pts), 1.1)
    }

    #[test]
    fn zero_weights_reduce_to_bfs_hops() {
        let g = grid_graph(5);
        let (_, costs) = dijkstra_tree(&g, 0, &vec![0.0; g.len()]);
        let levels = g.bfs_levels(0);
        for u in 0..g.len() {
            assert_eq!(costs[u].unwrap().hops, levels[u].unwrap());
        }
    }

    #[test]
    fn avoids_hot_node_when_detour_exists() {
        // Square 0-1 / 2-3 cycle: 0-1, 0-2, 1-3, 2-3. Node 1 hot.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let g = UnitDiskGraph::build(&Deployment::from_points(Region::square(2.0), pts), 1.1);
        let (parents, costs) = dijkstra_tree(&g, 0, &[0.0, 10.0, 0.1, 0.1]);
        assert_eq!(parents[3], Some(2), "route around the hot node");
        assert!((costs[3].unwrap().sum - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tie_break_prefers_cooler_peak_then_fewer_hops() {
        // Two routes from 0 to 4 with equal weight sums:
        //   A: 0 - 1 - 4          (2 hops, peak 0.4, sum 0.5)
        //   B: 0 - 2 - 3 - 4      (3 hops, peak 0.2, sum 0.5)
        // Equal sums, so the lower peak temperature must win despite more
        // hops.
        let pts = vec![
            Point::new(0.0, 1.0),   // 0 root
            Point::new(0.9, 1.0),   // 1 direct relay (hot, 0.4)
            Point::new(0.45, 1.7),  // 2 relay a (0.2)
            Point::new(1.15, 1.75), // 3 relay b (0.2)
            Point::new(1.8, 1.0),   // 4 target (0.1)
        ];
        let g = UnitDiskGraph::build(&Deployment::from_points(Region::square(3.0), pts), 1.0);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 4));
        assert!(g.has_edge(0, 2) && g.has_edge(2, 3) && g.has_edge(3, 4));
        assert!(!g.has_edge(2, 4) && !g.has_edge(0, 3) && !g.has_edge(0, 4));
        let w = [0.0, 0.4, 0.2, 0.2, 0.1];
        let (parents, costs) = dijkstra_tree(&g, 0, &w);
        // Both routes reach 4 with sum 0.5; the 3-hop route has max 0.2 < 0.4.
        assert!((costs[4].unwrap().sum - 0.5).abs() < 1e-12);
        assert_eq!(parents[4], Some(3), "lower peak temperature wins the tie");
        assert_eq!(costs[4].unwrap().hops, 3);
    }

    #[test]
    fn unreachable_nodes_have_no_cost() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let g = UnitDiskGraph::build(&Deployment::from_points(Region::new(60.0, 1.0), pts), 1.0);
        let (parents, costs) = dijkstra_tree(&g, 0, &[0.0, 0.0]);
        assert_eq!(parents[1], None);
        assert!(costs[1].is_none());
    }

    #[test]
    fn parents_form_tree_on_random_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let d = Deployment::uniform(Region::square(50.0), 200, &mut rng);
        let g = UnitDiskGraph::build(&d, 9.0);
        if !g.is_connected() {
            return;
        }
        let w: Vec<f64> = (0..g.len()).map(|i| (i % 7) as f64 / 7.0).collect();
        let (parents, costs) = dijkstra_tree(&g, 0, &w);
        let tree = crate::CollectionTree::from_parents(&g, 0, parents).unwrap();
        // Costs are monotone along parent edges.
        for u in 1..g.len() as u32 {
            let p = tree.parent(u).unwrap();
            assert!(costs[p as usize].unwrap() <= costs[u as usize].unwrap());
        }
    }

    #[test]
    fn path_cost_ordering_is_lexicographic() {
        let a = PathCost {
            sum: 1.0,
            max: 0.9,
            hops: 5,
        };
        let b = PathCost {
            sum: 1.0,
            max: 0.8,
            hops: 9,
        };
        let c = PathCost {
            sum: 0.9,
            max: 1.0,
            hops: 1,
        };
        assert!(c < b && b < a);
        assert_eq!(PathCost::ZERO.extend(0.5).extend(0.2).sum, 0.7);
        assert_eq!(PathCost::ZERO.extend(0.5).extend(0.2).max, 0.5);
        assert_eq!(PathCost::ZERO.extend(0.5).extend(0.2).hops, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let g = grid_graph(2);
        let _ = dijkstra_tree(&g, 0, &[0.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn weight_length_mismatch_rejected() {
        let g = grid_graph(2);
        let _ = dijkstra_tree(&g, 0, &[0.0]);
    }
}
