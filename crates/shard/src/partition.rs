//! Spatial owner-map partitioning of receiver slots.
//!
//! Shards own *receiver slots* (the per-slot accumulators are the only
//! mutable SIR state), assigned by cell of a [`GridIndex`] over the
//! receiver positions. The cell size is at least the certified Lemma-2
//! cutoff ([`conservative_lookahead`] over the world's per-slot
//! truncation radii), so a reverse row fans out to few shards; but note
//! that *any* assignment is bitwise-correct — cell size only controls
//! routing fanout and load balance, never results. The exact per-
//! transmitter routing masks come from one walk over each reverse row;
//! the geometric halo ([`Partition::halo_mask`], via
//! [`GridIndex::cells_within`]) is a conservative superset used to
//! cross-check them.

use std::sync::Arc;

use crn_geometry::{GridIndex, Point};
use crn_interference::conservative_lookahead;
use crn_sim::SimWorld;

/// Hard cap on the shard count: routing masks are single `u64`
/// bitmasks, which keeps per-event dispatch branch-free.
pub const MAX_SHARDS: u32 = 64;

/// `cell_owner` marker for grid cells containing no receiver.
const UNOWNED: u16 = u16::MAX;

/// A built owner map: which shard owns each receiver slot, plus the
/// per-transmitter routing masks derived from the reverse rows.
#[derive(Debug)]
pub struct Partition {
    shards: u32,
    lookahead: f64,
    /// Shard owning each receiver slot (indexed by slot id).
    slot_owner: Arc<Vec<u16>>,
    /// Shard owning each grid cell, [`UNOWNED`] where empty.
    cell_owner: Vec<u16>,
    /// Shards (bitmask) whose owned slots appear in each SU's reverse row.
    su_mask: Vec<u64>,
    /// Shards (bitmask) whose owned slots appear in each PU's reverse row.
    pu_mask: Vec<u64>,
    grid: GridIndex,
}

impl Partition {
    /// Partitions `world`'s receiver slots into (at most) `shards`
    /// shards. Requires the sparse reverse index (the caller,
    /// [`crate::build_plane`], guarantees it). The result is fully
    /// deterministic in `(world, shards)`.
    #[must_use]
    pub fn build(world: &SimWorld, shards: u32) -> Partition {
        let shards = shards.clamp(1, MAX_SHARDS);
        debug_assert!(
            world.has_reverse_index(),
            "partitioning needs the truncated reverse index"
        );
        let region = world.topology().region();
        let positions = world.su_positions();
        let rx_points: Vec<Point> = world
            .receivers()
            .iter()
            .map(|&su| positions[su as usize])
            .collect();

        // Cell size: the certified lookahead when the world has one
        // (truncated mode always does), else a coarse fraction of the
        // region so the grid stays small.
        let lookahead = world
            .truncation_stats()
            .map(|(cutoffs, _)| conservative_lookahead(cutoffs))
            .unwrap_or(0.0);
        let fallback = (region.width().max(region.height()) / 16.0).max(1e-9);
        let cell = if lookahead > 0.0 { lookahead } else { fallback };
        let grid = GridIndex::build(&rx_points, region, cell);
        let (cols, rows) = grid.dims();

        // Receiver count per cell, in the grid's row-major order.
        let mut count = vec![0u32; cols * rows];
        let mut slot_cell = Vec::with_capacity(rx_points.len());
        for &p in &rx_points {
            let c = grid.cell_of(p);
            slot_cell.push(c);
            count[c] += 1;
        }

        // Split the occupied cells, in row-major order, into contiguous
        // chunks balanced by receiver count: close a shard once it holds
        // its fair share (ceiling) of what remained when it opened.
        let total = rx_points.len() as u64;
        let mut cell_owner = vec![UNOWNED; cols * rows];
        let mut shard = 0u16;
        let mut taken = 0u64;
        let mut done = 0u64;
        for (c, &n) in count.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cell_owner[c] = shard;
            taken += u64::from(n);
            let remaining_shards = u64::from(shards) - u64::from(shard);
            if u32::from(shard) + 1 < shards && taken * remaining_shards >= total - done {
                done += taken;
                taken = 0;
                shard += 1;
            }
        }
        // If the fair-share close fired on the final occupied cell, the
        // freshly opened shard owns nothing — don't count it.
        let shards_used = if taken == 0 && done > 0 {
            u32::from(shard)
        } else {
            u32::from(shard) + 1
        };

        let slot_owner: Vec<u16> = slot_cell.iter().map(|&c| cell_owner[c]).collect();
        debug_assert!(slot_owner.iter().all(|&o| u32::from(o) < shards_used));

        // Exact routing masks from one walk per reverse row.
        let mask_of = |row: Option<(&[u32], &[f64])>| -> u64 {
            let mut m = 0u64;
            if let Some((slots, _)) = row {
                for &s in slots {
                    m |= 1u64 << slot_owner[s as usize];
                }
            }
            m
        };
        let su_mask: Vec<u64> = (0..world.num_sus())
            .map(|su| mask_of(world.who_hears_su(su as u32)))
            .collect();
        let pu_mask: Vec<u64> = (0..world.num_pus())
            .map(|pu| mask_of(world.who_hears_pu(pu)))
            .collect();

        Partition {
            shards: shards_used,
            lookahead,
            slot_owner: Arc::new(slot_owner),
            cell_owner,
            su_mask,
            pu_mask,
            grid,
        }
    }

    /// Number of shards actually used (≤ the requested count when there
    /// are fewer occupied cells than shards).
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The certified lookahead radius the cell size was derived from
    /// (`0.0` when the world had no truncation cutoffs).
    #[must_use]
    pub fn lookahead(&self) -> f64 {
        self.lookahead
    }

    /// Shard owning each receiver slot, shared with the shard workers.
    #[must_use]
    pub(crate) fn slot_owner_arc(&self) -> Arc<Vec<u16>> {
        Arc::clone(&self.slot_owner)
    }

    /// Shard owning receiver slot `slot`.
    #[must_use]
    pub fn owner_of_slot(&self, slot: u32) -> u16 {
        self.slot_owner[slot as usize]
    }

    /// Shards reached by SU `su`'s reverse row.
    #[must_use]
    pub fn su_mask(&self, su: u32) -> u64 {
        self.su_mask[su as usize]
    }

    /// Shards reached by PU `pu`'s reverse row.
    #[must_use]
    pub fn pu_mask(&self, pu: u32) -> u64 {
        self.pu_mask[pu as usize]
    }

    /// Conservative geometric superset of the shards any interferer at
    /// `p` with reach `radius` can touch: every shard owning a grid cell
    /// that intersects the disk. The exact masks must be subsets of this
    /// (validated by the partition tests).
    #[must_use]
    pub fn halo_mask(&self, p: Point, radius: f64) -> u64 {
        let mut m = 0u64;
        for c in self.grid.cells_within(p, radius) {
            let o = self.cell_owner[c];
            if o != UNOWNED {
                m |= 1u64 << o;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_geometry::Region;
    use crn_sim::InterferenceModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Jittered grid with chain-to-corner parents (the `engine_equiv`
    /// deployment shape): jitter ≤ ±1.0 keeps every tree link audible.
    fn random_world(n: usize, seed: u64) -> SimWorld {
        let cols = (n as f64).sqrt().ceil() as usize;
        let spacing = 7.0;
        let side = cols as f64 * spacing + 10.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sus = Vec::with_capacity(cols * cols);
        let mut parents = Vec::with_capacity(cols * cols);
        for i in 0..cols * cols {
            let (row, col) = (i / cols, i % cols);
            let dx: f64 = rng.gen_range(-1.0..1.0);
            let dy: f64 = rng.gen_range(-1.0..1.0);
            sus.push(Point::new(
                col as f64 * spacing + 5.0 + dx,
                row as f64 * spacing + 5.0 + dy,
            ));
            parents.push(if i == 0 {
                None
            } else if col > 0 {
                Some((i - 1) as u32)
            } else {
                Some((i - cols) as u32)
            });
        }
        let pus = (0..cols)
            .map(|_| {
                let x: f64 = rng.gen_range(0.0..side);
                let y: f64 = rng.gen_range(0.0..side);
                Point::new(x, y)
            })
            .collect();
        SimWorld::builder(Region::square(side))
            .su_positions(sus)
            .pu_positions(pus)
            .parents(parents)
            .sense_range(25.0)
            .interference(InterferenceModel::Truncated { epsilon: 1e-3 })
            .build()
            .expect("world builds")
    }

    #[test]
    fn partition_is_deterministic_and_covers_every_slot() {
        let world = random_world(80, 11);
        let a = Partition::build(&world, 4);
        let b = Partition::build(&world, 4);
        assert_eq!(a.slot_owner, b.slot_owner);
        assert_eq!(a.su_mask, b.su_mask);
        assert_eq!(a.pu_mask, b.pu_mask);
        assert!(a.shards() >= 1 && a.shards() <= 4);
        for s in 0..world.num_receiver_slots() as u32 {
            assert!(u32::from(a.owner_of_slot(s)) < a.shards());
        }
    }

    #[test]
    fn single_shard_masks_are_trivial() {
        let world = random_world(40, 3);
        let p = Partition::build(&world, 1);
        assert_eq!(p.shards(), 1);
        for su in 0..world.num_sus() as u32 {
            let nonempty = world.who_hears_su(su).is_some_and(|(s, _)| !s.is_empty());
            assert_eq!(p.su_mask(su), u64::from(nonempty));
        }
    }

    #[test]
    fn exact_masks_are_subsets_of_the_geometric_halo() {
        let world = random_world(120, 29);
        for shards in [2, 3, 8, 64] {
            let p = Partition::build(&world, shards);
            let halo_r = p.lookahead().max(world.phy().su_radius());
            for su in 0..world.num_sus() {
                let halo = p.halo_mask(world.su_positions()[su], halo_r);
                let exact = p.su_mask(su as u32);
                assert_eq!(
                    exact & !halo,
                    0,
                    "su {su}: exact mask {exact:#b} escapes halo {halo:#b} at {shards} shards"
                );
            }
            for pu in 0..world.num_pus() {
                let halo = p.halo_mask(world.pu_positions()[pu], halo_r);
                let exact = p.pu_mask(pu as u32);
                assert_eq!(exact & !halo, 0, "pu {pu} escapes halo at {shards} shards");
            }
        }
    }

    #[test]
    fn receiver_load_is_roughly_balanced() {
        let world = random_world(200, 7);
        let p = Partition::build(&world, 4);
        let mut per_shard = vec![0u32; p.shards() as usize];
        for s in 0..world.num_receiver_slots() as u32 {
            per_shard[p.owner_of_slot(s) as usize] += 1;
        }
        let total: u32 = per_shard.iter().sum();
        assert_eq!(total as usize, world.num_receiver_slots());
        // Cells are coarse (lookahead-sized), so exact balance is out of
        // reach — but every *used* shard must own at least one receiver.
        for (i, &n) in per_shard.iter().enumerate() {
            assert!(n > 0, "shard {i} of {} owns no receivers", p.shards());
        }
    }
}
