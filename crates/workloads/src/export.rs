//! JSONL / CSV serialization of sweep records and simulator traces.
//!
//! Everything here is hand-rolled, line-oriented, and deterministic —
//! byte-identical output for identical inputs — so exported artifacts
//! can be diffed across runs and machines. Floats use Rust's shortest
//! round-trip formatting.

use crate::json::Json;
use crate::RunRecord;
use crn_sim::{TraceEvent, TraceLog};
use std::fmt::Write as _;
use std::path::Path;
use std::str::FromStr;

/// On-disk format for trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (`{"t":…,"event":"tx_end",…}`).
    Jsonl,
    /// Flat CSV with a header row.
    Csv,
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(format!(
                "unknown trace format {other:?} (expected jsonl or csv)"
            )),
        }
    }
}

/// Serializes a trace in `format`.
#[must_use]
pub fn trace_to_string(log: &TraceLog, format: TraceFormat) -> String {
    match format {
        TraceFormat::Jsonl => log.to_jsonl(),
        TraceFormat::Csv => log.to_csv(),
    }
}

/// Writes a trace to `path` in `format`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_trace(path: &Path, log: &TraceLog, format: TraceFormat) -> std::io::Result<()> {
    std::fs::write(path, trace_to_string(log, format))
}

/// Serializes sweep records as JSONL, one record per line, in input
/// order. (CSV rendering of the same records lives in
/// [`crate::table::csv_records`].)
#[must_use]
pub fn records_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_jsonl(r));
        out.push('\n');
    }
    out
}

/// One record as a single JSON line.
#[must_use]
pub fn record_jsonl(r: &RunRecord) -> String {
    let mut s = String::with_capacity(256);
    s.push('{');
    let _ = write!(
        s,
        "\"figure\":{},\"x_name\":{},\"x\":{},\"algorithm\":{},\"rep\":{}",
        json_str(&r.figure),
        json_str(&r.x_name),
        json_f64(r.x),
        json_str(&r.algorithm.to_string()),
        r.rep,
    );
    let _ = write!(
        s,
        ",\"finished\":{},\"delay_slots\":{},\"capacity_fraction\":{}",
        r.finished,
        json_f64(r.delay_slots),
        json_f64(r.capacity_fraction),
    );
    match r.jain {
        Some(j) => {
            let _ = write!(s, ",\"jain\":{}", json_f64(j));
        }
        None => s.push_str(",\"jain\":null"),
    }
    let _ = write!(
        s,
        ",\"attempts\":{},\"successes\":{},\"pu_aborts\":{},\"sir_failures\":{},\"capture_losses\":{}",
        r.attempts, r.successes, r.pu_aborts, r.sir_failures, r.capture_losses,
    );
    let _ = write!(
        s,
        ",\"peak_queue\":{},\"tree_height\":{},\"tree_max_degree\":{}}}",
        r.peak_queue, r.tree_height, r.tree_max_degree,
    );
    s
}

/// Parses back a JSONL document written by [`records_jsonl`], one
/// [`RunRecord`] per non-empty line.
///
/// This is the read half of the export contract: `parse(write(records))`
/// reproduces the records, with the single caveat that non-finite floats
/// were written as `null` (JSON has no `NaN`/`inf` literal) and come back
/// as `NaN`.
///
/// # Errors
///
/// Returns a message naming the offending line (1-based) for malformed
/// JSON, missing fields, or type mismatches.
pub fn parse_records_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_record_line(line).map_err(|e| format!("record line {}: {e}", idx + 1))?);
    }
    Ok(records)
}

/// Parses one JSONL line into a [`RunRecord`].
fn parse_record_line(line: &str) -> Result<RunRecord, String> {
    let v: Json = line.parse().map_err(|e| format!("{e}"))?;
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field '{name}'"))
    };
    // Numeric fields written as `null` (the non-finite convention) read
    // back as NaN; genuinely missing fields are an error.
    let f64_field = |name: &str| -> Result<f64, String> {
        let field = v
            .get(name)
            .ok_or_else(|| format!("missing number field '{name}'"))?;
        if field.is_null() {
            return Ok(f64::NAN);
        }
        field
            .as_f64()
            .ok_or_else(|| format!("field '{name}' is not a number"))
    };
    let u64_field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer field '{name}'"))
    };
    let algorithm = str_field("algorithm")?
        .parse()
        .map_err(|e: String| format!("bad algorithm: {e}"))?;
    let jain = match v.get("jain") {
        None => return Err("missing field 'jain'".into()),
        Some(Json::Null) => None,
        Some(j) => Some(j.as_f64().ok_or("field 'jain' is not a number")?),
    };
    Ok(RunRecord {
        figure: str_field("figure")?,
        x_name: str_field("x_name")?,
        x: f64_field("x")?,
        algorithm,
        rep: u32::try_from(u64_field("rep")?).map_err(|e| format!("rep: {e}"))?,
        finished: v
            .get("finished")
            .and_then(Json::as_bool)
            .ok_or("missing bool field 'finished'")?,
        delay_slots: f64_field("delay_slots")?,
        capacity_fraction: f64_field("capacity_fraction")?,
        jain,
        attempts: u64_field("attempts")?,
        successes: u64_field("successes")?,
        pu_aborts: u64_field("pu_aborts")?,
        sir_failures: u64_field("sir_failures")?,
        capture_losses: u64_field("capture_losses")?,
        peak_queue: v
            .get("peak_queue")
            .and_then(Json::as_usize)
            .ok_or("missing integer field 'peak_queue'")?,
        tree_height: u32::try_from(u64_field("tree_height")?)
            .map_err(|e| format!("tree_height: {e}"))?,
        tree_max_degree: v
            .get("tree_max_degree")
            .and_then(Json::as_usize)
            .ok_or("missing integer field 'tree_max_degree'")?,
    })
}

/// JSON number rendering: shortest round-trip for finite values, `null`
/// for NaN/±∞ — JSON has no non-finite literals, and a `NaN` token turns
/// the whole line unparsable (an all-`t = 0` round yields a NaN Jain).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

/// Minimal JSON string encoding (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes any sequence of trace events as JSONL (useful for events
/// gathered outside a [`TraceLog`]).
#[must_use]
pub fn events_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::CollectionAlgorithm;

    fn record() -> RunRecord {
        RunRecord {
            figure: "fig6a".into(),
            x_name: "p_t".into(),
            x: 0.3,
            algorithm: CollectionAlgorithm::Addc,
            rep: 2,
            finished: true,
            delay_slots: 123.5,
            capacity_fraction: 0.25,
            jain: None,
            attempts: 10,
            successes: 8,
            pu_aborts: 1,
            sir_failures: 1,
            capture_losses: 0,
            peak_queue: 3,
            tree_height: 4,
            tree_max_degree: 5,
        }
    }

    #[test]
    fn record_jsonl_is_flat_and_complete() {
        let line = record_jsonl(&record());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"figure\":\"fig6a\""));
        assert!(line.contains("\"algorithm\":\"ADDC\""));
        assert!(line.contains("\"jain\":null"));
        assert!(line.contains("\"delay_slots\":123.5"));
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn records_jsonl_is_one_line_per_record() {
        let out = records_jsonl(&[record(), record()]);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        // A round where every flow lands at t = 0 makes Jain 0/0 = NaN;
        // JSON has no NaN literal, so the writer must fall back to null.
        let mut r = record();
        r.jain = Some(f64::NAN);
        r.delay_slots = f64::INFINITY;
        r.capacity_fraction = f64::NEG_INFINITY;
        let line = record_jsonl(&r);
        assert!(line.contains("\"jain\":null"), "{line}");
        assert!(line.contains("\"delay_slots\":null"), "{line}");
        assert!(line.contains("\"capacity_fraction\":null"), "{line}");
        for token in ["NaN", "inf"] {
            assert!(!line.contains(token), "invalid JSON token {token}: {line}");
        }
        // Finite values still use shortest round-trip formatting.
        assert!(record_jsonl(&record()).contains("\"delay_slots\":123.5"));
    }

    #[test]
    fn figure_names_with_metacharacters_stay_one_json_object() {
        let mut r = record();
        r.figure = "delay \"vs\" N,\nper rep".into();
        let line = record_jsonl(&r);
        assert_eq!(line.matches('{').count(), 1);
        assert!(line.contains("\\\"vs\\\""), "{line}");
        assert!(!line.contains('\n'), "JSONL must stay one line: {line}");
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!("csv".parse::<TraceFormat>().unwrap(), TraceFormat::Csv);
        assert!("xml".parse::<TraceFormat>().is_err());
    }

    /// Field-by-field equality where NaN == NaN (the read-back convention
    /// for values exported as `null`).
    fn assert_records_eq(a: &RunRecord, b: &RunRecord) {
        let f64_eq = |x: f64, y: f64| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
        assert_eq!(a.figure, b.figure);
        assert_eq!(a.x_name, b.x_name);
        assert!(f64_eq(a.x, b.x), "x: {} vs {}", a.x, b.x);
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.rep, b.rep);
        assert_eq!(a.finished, b.finished);
        assert!(f64_eq(a.delay_slots, b.delay_slots));
        assert!(f64_eq(a.capacity_fraction, b.capacity_fraction));
        match (a.jain, b.jain) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!(f64_eq(x, y), "jain: {x} vs {y}"),
            other => panic!("jain mismatch: {other:?}"),
        }
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.pu_aborts, b.pu_aborts);
        assert_eq!(a.sir_failures, b.sir_failures);
        assert_eq!(a.capture_losses, b.capture_losses);
        assert_eq!(a.peak_queue, b.peak_queue);
        assert_eq!(a.tree_height, b.tree_height);
        assert_eq!(a.tree_max_degree, b.tree_max_degree);
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let mut second = record();
        second.algorithm = CollectionAlgorithm::CoolestOracle;
        second.rep = 7;
        second.jain = Some(0.875);
        second.figure = "name with \"quotes\",\nand a newline".into();
        let records = vec![record(), second];
        let parsed = parse_records_jsonl(&records_jsonl(&records)).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            assert_records_eq(p, r);
        }
        // Finite-valued records round-trip under plain equality too.
        assert_eq!(parsed, records);
    }

    #[test]
    fn null_for_nan_reads_back_as_nan() {
        // The PR 3 convention: non-finite floats export as null. Reading
        // back maps null → NaN for required floats and null → None for
        // the optional Jain; everything else must match exactly.
        let mut r = record();
        r.jain = Some(f64::NAN);
        r.delay_slots = f64::INFINITY;
        r.capacity_fraction = f64::NAN;
        let parsed = parse_records_jsonl(&records_jsonl(&[r.clone()])).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].jain, None, "null jain reads back as None");
        assert!(parsed[0].delay_slots.is_nan());
        assert!(parsed[0].capacity_fraction.is_nan());
        let mut expect = r;
        expect.jain = None;
        expect.delay_slots = f64::NAN;
        expect.capacity_fraction = f64::NAN;
        assert_records_eq(&parsed[0], &expect);
    }

    #[test]
    fn real_sweep_output_round_trips() {
        // End-to-end over actual simulation output: a tiny Fig. 6 panel,
        // exported and re-imported, reproduces the in-memory records.
        let mut spec = crate::presets::fig6_spec(crate::PresetKind::Tiny, crate::Fig6Panel::C);
        spec.reps = 1;
        let records = crate::run_sweep(&spec, crate::SweepOptions::default()).unwrap();
        assert!(!records.is_empty());
        let parsed = parse_records_jsonl(&records_jsonl(&records)).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            assert_records_eq(p, r);
        }
    }

    #[test]
    fn parse_reports_offending_line_and_field() {
        let good = record_jsonl(&record());
        let e = parse_records_jsonl(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = parse_records_jsonl("{\"figure\":\"f\"}\n").unwrap_err();
        assert!(e.contains("missing"), "{e}");
        let e = parse_records_jsonl(&good.replace("\"algorithm\":\"ADDC\"", "\"algorithm\":\"x\""))
            .unwrap_err();
        assert!(e.contains("algorithm"), "{e}");
        // Blank lines are skipped, not errors.
        let parsed = parse_records_jsonl(&format!("\n{good}\n\n")).unwrap();
        assert_eq!(parsed.len(), 1);
    }
}
