//! External SIR plane: the seam that lets interference accounting run
//! outside the sequential engine.
//!
//! The engine's control flow — the event queue, the single seeded RNG,
//! MAC phases, capture locks, packet queues, fault handling — is
//! inherently sequential: every random draw is consumed in global event
//! order, so partitioning control would change the stream and break the
//! bit-for-bit determinism contract. What *can* be partitioned is the
//! SIR data plane: per-receiver-slot interference accumulation and the
//! sticky SIR verdicts, which touch disjoint slots independently and
//! feed back into control at exactly one point (the verdict read when a
//! transmission finishes naturally).
//!
//! A [`SirPlane`] implementation owns that data plane. The engine calls
//! it in global event order; the only value that ever flows back is the
//! per-transmission `failed_sir` bit returned by [`SirPlane::tx_finish`].
//! Everything else is fire-and-forget, which is what allows an
//! implementation (see the `crn-shard` crate) to mirror the calls into
//! spatially sharded workers and defer the work until a verdict — or a
//! window commit — forces synchronization.
//!
//! Contract (mirrors the engine's delta path exactly; the equivalence
//! tests hold implementations to bit-identical [`crate::SimReport`]s):
//!
//! - Calls arrive in global event order from one thread.
//! - `tx_start(su, rx_slot, signal)` replays `su`'s reverse row into the
//!   per-slot accumulators, re-verdicts receptions at slots whose
//!   interference increased, computes the *initial* verdict for the new
//!   reception from the fully updated accumulator, and chains it at
//!   `rx_slot`.
//! - `tx_finish(su, rx_slot, need_verdict)` unchains the reception,
//!   withdraws the row (snap-to-zero on the last contributor), and — iff
//!   `need_verdict` — returns the sticky `failed_sir` bit accumulated
//!   since `tx_start`. With `need_verdict == false` (aborted
//!   transmissions, whose verdict the engine never reads) the return
//!   value is meaningless and implementations need not synchronize.
//! - `pu_on` / `pu_off` replay the PU's reverse row (re-verdicting on
//!   increase only).
//! - `advance_to(now)` announces simulation-time progress before each
//!   event is processed; windowed implementations commit here.
//! - `finish` is called once, after the last event; implementations
//!   flush workers and publish telemetry.

use std::fmt::Debug;

/// An externally owned SIR data plane (see the module docs for the exact
/// calling contract). `Send` because implementations typically carry
/// worker handles; `Debug` because the [`crate::Simulator`] that embeds
/// one is `Debug`.
pub trait SirPlane: Send + Debug {
    /// Simulation time is about to advance to `now` (non-decreasing).
    fn advance_to(&mut self, now: f64);

    /// Transmitter `su` starts a reception at `rx_slot` with
    /// intended-link power `signal` (degradation included).
    fn tx_start(&mut self, su: u32, rx_slot: u32, signal: f64);

    /// Transmitter `su`'s reception at `rx_slot` ends. Returns the sticky
    /// `failed_sir` verdict when `need_verdict` is set; the return value
    /// is unspecified otherwise.
    fn tx_finish(&mut self, su: u32, rx_slot: u32, need_verdict: bool) -> bool;

    /// PU `pu` turned on.
    fn pu_on(&mut self, pu: u32);

    /// PU `pu` turned off.
    fn pu_off(&mut self, pu: u32);

    /// The run is over; flush and publish telemetry.
    fn finish(&mut self);
}
