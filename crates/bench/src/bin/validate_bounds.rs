//! Numerically validates the paper's analytical results (Theorem 1,
//! Lemma 8, Theorem 2) against simulated ADDC runs: observed per-packet
//! service times and total collection delay must sit below the bounds,
//! and the achieved capacity above the Theorem 2 lower bound.
//!
//! Usage: `cargo run -p crn-bench --release --bin validate-bounds --
//! [--preset tiny|scaled] [--reps 5]`

use crn_bench::take_flag;
use crn_core::{CollectionAlgorithm, Scenario};
use crn_theory::DelayBounds;
use crn_workloads::{presets, PresetKind};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let preset: PresetKind = take_flag(&mut args, "--preset")
        .map_or(PresetKind::Tiny, |s| s.parse().expect("valid preset"));
    let reps: u32 = take_flag(&mut args, "--reps").map_or(5, |s| s.parse().expect("number"));

    let base = presets::base_params(preset);
    println!(
        "## Theorem validation [{preset} preset: n = {}, N = {}, A = {}², p_t = {}]\n",
        base.num_sus,
        base.num_pus,
        base.area_side,
        base.activity.duty_cycle()
    );
    println!("| rep | Δ | Δ_b | service max (slots) | Thm-1 bound | delay (slots) | Thm-2 bound | capacity | Thm-2 cap. lower |");
    println!("|---|---|---|---|---|---|---|---|---|");

    let mut all_hold = true;
    for rep in 0..reps {
        let mut params = base.clone();
        params.seed = u64::from(rep) * 7919 + 13;
        let scenario = Scenario::generate(&params).expect("connected scenario");
        let tree = scenario.tree(CollectionAlgorithm::Addc).expect("cds tree");
        let outcome = scenario.run(CollectionAlgorithm::Addc).expect("run");
        let r = &outcome.report;

        let c0 = params.area_side * params.area_side / params.num_sus as f64;
        let bounds = DelayBounds::compute(
            &params.phy,
            params.pcr_constants,
            params.pu_density(),
            params.activity.duty_cycle(),
            params.num_sus,
            c0,
            tree.max_degree(),
            tree.root_degree(),
        );

        let service_slots = r.max_service_time / params.mac.slot;
        let t1_ok = service_slots <= bounds.theorem1_service_slots;
        let t2_ok = r.delay_slots <= bounds.theorem2_delay_slots;
        let cap_ok = r.capacity_fraction() >= bounds.capacity_fraction_lower;
        all_hold &= t1_ok && t2_ok && cap_ok && r.finished;

        println!(
            "| {rep} | {} | {} | {:.0}{} | {:.0} | {:.0}{} | {:.0} | {:.4}{} | {:.5} |",
            tree.max_degree(),
            tree.root_degree(),
            service_slots,
            mark(t1_ok),
            bounds.theorem1_service_slots,
            r.delay_slots,
            mark(t2_ok),
            bounds.theorem2_delay_slots,
            r.capacity_fraction(),
            mark(cap_ok),
            bounds.capacity_fraction_lower,
        );
    }
    println!(
        "\nall bounds hold: {}",
        if all_hold { "YES" } else { "NO (see ✗ rows)" }
    );
    println!(
        "(✓ = observed within bound; the paper's bounds are worst-case, so \
         large slack is expected.)"
    );
    if !all_hold {
        std::process::exit(1);
    }
}

fn mark(ok: bool) -> &'static str {
    if ok {
        " ✓"
    } else {
        " ✗"
    }
}
