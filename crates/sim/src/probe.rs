//! Observability layer: typed trace events emitted from the simulator's
//! hot path, consumed by pluggable [`Probe`]s.
//!
//! The paper's evaluation (Fig. 4, Fig. 6(a)–(f)) is explained by
//! *dynamics* an aggregate [`crate::SimReport`] averages away — backoff
//! freezing under carrier sensing, spectrum-handoff bursts, and queue
//! buildup on CDS relays. A probe sees each of those as it happens:
//!
//! - [`NoopProbe`] (the default) — compiles to nothing; the uninstrumented
//!   simulator pays zero cost because `Simulator<NoopProbe>` is
//!   monomorphized with empty `on_event` bodies.
//! - [`TraceLog`] — a bounded ring buffer of raw [`TraceEvent`]s, with
//!   JSONL/CSV serialization for offline analysis.
//! - [`TimeSeries`] — per-bucket channel utilization, in-flight
//!   transmission counts, and aggregate queue depth.
//!
//! Attach a probe with [`crate::SimulatorBuilder::probe`] and recover it
//! (with the report) from [`crate::Simulator::run_with_probe`].

use std::collections::VecDeque;

/// Why a transmission ended (the attempt-classification partition: every
/// attempt gets exactly one of these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxOutcome {
    /// Decoded by the intended receiver.
    Success,
    /// Aborted mid-air by a PU activation inside the transmitter's PCR
    /// (spectrum handoff).
    PuAbort,
    /// Cumulative SIR at the receiver dropped below the decode threshold.
    SirLoss,
    /// The receiver was captured by a stronger concurrent transmission
    /// (RS mode).
    CaptureLoss,
    /// Voided by an injected fault: the transmitter crashed or paused
    /// mid-air, or the receiver was dead (crashed SU, or the base station
    /// during a brownout window) when the airtime ended. The packet stays
    /// queued at the sender.
    FaultAbort,
}

impl TxOutcome {
    /// Stable lowercase label used by the serializers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TxOutcome::Success => "success",
            TxOutcome::PuAbort => "pu_abort",
            TxOutcome::SirLoss => "sir_loss",
            TxOutcome::CaptureLoss => "capture_loss",
            TxOutcome::FaultAbort => "fault_abort",
        }
    }
}

/// What happened (see [`TraceEvent`] for when).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEventKind {
    /// An SU drew backoff `t_i` from contention window `cw` and entered a
    /// contention round.
    BackoffStart {
        /// Contending SU.
        su: u32,
        /// Drawn backoff in seconds, `t_i ∈ (0, cw]`.
        t_i: f64,
        /// This round's contention window in seconds.
        cw: f64,
    },
    /// The channel inside the SU's PCR went busy; its countdown froze
    /// with `remaining` seconds left.
    BackoffFreeze {
        /// Frozen SU.
        su: u32,
        /// Seconds of countdown preserved.
        remaining: f64,
    },
    /// The channel cleared; the countdown resumed where it froze.
    BackoffResume {
        /// Resuming SU.
        su: u32,
        /// Seconds of countdown still to run.
        remaining: f64,
    },
    /// An SU started transmitting its head-of-queue packet to `rx`.
    TxStart {
        /// Transmitter.
        su: u32,
        /// Intended receiver (tree parent).
        rx: u32,
    },
    /// A transmission ended with `outcome`.
    TxEnd {
        /// Transmitter.
        su: u32,
        /// Intended receiver.
        rx: u32,
        /// How it ended.
        outcome: TxOutcome,
    },
    /// After transmitting, the SU waits the fairness remainder
    /// `cw − t_i` before its next round (Algorithm 1, line 12).
    FairnessWait {
        /// Waiting SU.
        su: u32,
        /// Wait length in seconds.
        wait: f64,
    },
    /// A snapshot packet reached the base station.
    Delivery {
        /// SU whose snapshot this packet carries.
        origin: u32,
        /// Last-hop transmitter that handed it to the base station.
        via: u32,
    },
    /// An SU's queue length changed (packet generated, relayed in, or
    /// served out).
    QueueDepth {
        /// The SU whose queue changed.
        su: u32,
        /// New queue length.
        depth: u32,
    },
    /// A primary user turned ON for the current slot.
    PuOn {
        /// Activating PU.
        pu: u32,
    },
    /// A primary user turned OFF for the current slot.
    PuOff {
        /// Deactivating PU.
        pu: u32,
    },
    /// A snapshot packet was generated at an SU (enqueued at its origin).
    PacketGenerated {
        /// Origin SU.
        su: u32,
    },
    /// An injected fault crashed an SU: its queue is dropped (a
    /// [`TraceEventKind::PacketsLost`] follows when it was non-empty) and
    /// its children become orphans of the self-healing protocol.
    SuCrashed {
        /// Crashed SU.
        su: u32,
    },
    /// A crashed SU rejoined with an empty queue.
    SuRecovered {
        /// Recovered SU.
        su: u32,
    },
    /// An injected fault paused an SU; its queue is retained.
    SuPaused {
        /// Paused SU.
        su: u32,
    },
    /// A paused SU resumed with its retained queue.
    SuResumed {
        /// Resumed SU.
        su: u32,
    },
    /// Self-healing: an orphaned SU adopted a new live parent.
    Reparented {
        /// Orphaned SU.
        su: u32,
        /// Adoptive parent (a live dominator within range).
        to: u32,
        /// Seconds from orphaning to adoption.
        latency: f64,
    },
    /// The primary network switched activity regime.
    PuRegimeShift {
        /// Duty cycle of the new activity model.
        duty: f64,
    },
    /// An SU's uplink path gain was scaled by an injected fault.
    LinkDegraded {
        /// Affected transmitter.
        su: u32,
        /// New multiplier on the link's path gain, in `[0, 1]`.
        factor: f64,
    },
    /// A base-station brownout window opened (`on = true`) or closed.
    Brownout {
        /// Whether the base station is now down.
        on: bool,
    },
    /// Packets were lost to an injected fault at an SU (queue dropped on
    /// crash, or a snapshot generated while crashed).
    PacketsLost {
        /// The losing SU.
        su: u32,
        /// How many packets.
        count: u32,
    },
}

impl TraceEventKind {
    /// Stable lowercase label used by the serializers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::BackoffStart { .. } => "backoff_start",
            TraceEventKind::BackoffFreeze { .. } => "backoff_freeze",
            TraceEventKind::BackoffResume { .. } => "backoff_resume",
            TraceEventKind::TxStart { .. } => "tx_start",
            TraceEventKind::TxEnd { .. } => "tx_end",
            TraceEventKind::FairnessWait { .. } => "fairness_wait",
            TraceEventKind::Delivery { .. } => "delivery",
            TraceEventKind::QueueDepth { .. } => "queue_depth",
            TraceEventKind::PuOn { .. } => "pu_on",
            TraceEventKind::PuOff { .. } => "pu_off",
            TraceEventKind::PacketGenerated { .. } => "packet_generated",
            TraceEventKind::SuCrashed { .. } => "su_crashed",
            TraceEventKind::SuRecovered { .. } => "su_recovered",
            TraceEventKind::SuPaused { .. } => "su_paused",
            TraceEventKind::SuResumed { .. } => "su_resumed",
            TraceEventKind::Reparented { .. } => "reparented",
            TraceEventKind::PuRegimeShift { .. } => "pu_regime_shift",
            TraceEventKind::LinkDegraded { .. } => "link_degraded",
            TraceEventKind::Brownout { .. } => "brownout",
            TraceEventKind::PacketsLost { .. } => "packets_lost",
        }
    }
}

/// One timestamped engine event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in seconds.
    pub time: f64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// One-object-per-line JSON, e.g.
    /// `{"t":0.00125,"event":"tx_end","su":3,"rx":2,"outcome":"success"}`.
    ///
    /// Hand-rolled (every field is a number or a fixed label, so no
    /// escaping is ever needed) and deterministic: floats use Rust's
    /// shortest round-trip formatting.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = format!("{{\"t\":{},\"event\":\"{}\"", self.time, self.kind.label());
        match self.kind {
            TraceEventKind::BackoffStart { su, t_i, cw } => {
                s.push_str(&format!(",\"su\":{su},\"t_i\":{t_i},\"cw\":{cw}"));
            }
            TraceEventKind::BackoffFreeze { su, remaining }
            | TraceEventKind::BackoffResume { su, remaining } => {
                s.push_str(&format!(",\"su\":{su},\"remaining\":{remaining}"));
            }
            TraceEventKind::TxStart { su, rx } => {
                s.push_str(&format!(",\"su\":{su},\"rx\":{rx}"));
            }
            TraceEventKind::TxEnd { su, rx, outcome } => {
                s.push_str(&format!(
                    ",\"su\":{su},\"rx\":{rx},\"outcome\":\"{}\"",
                    outcome.label()
                ));
            }
            TraceEventKind::FairnessWait { su, wait } => {
                s.push_str(&format!(",\"su\":{su},\"wait\":{wait}"));
            }
            TraceEventKind::Delivery { origin, via } => {
                s.push_str(&format!(",\"origin\":{origin},\"via\":{via}"));
            }
            TraceEventKind::QueueDepth { su, depth } => {
                s.push_str(&format!(",\"su\":{su},\"depth\":{depth}"));
            }
            TraceEventKind::PuOn { pu } | TraceEventKind::PuOff { pu } => {
                s.push_str(&format!(",\"pu\":{pu}"));
            }
            TraceEventKind::PacketGenerated { su }
            | TraceEventKind::SuCrashed { su }
            | TraceEventKind::SuRecovered { su }
            | TraceEventKind::SuPaused { su }
            | TraceEventKind::SuResumed { su } => {
                s.push_str(&format!(",\"su\":{su}"));
            }
            TraceEventKind::Reparented { su, to, latency } => {
                s.push_str(&format!(",\"su\":{su},\"to\":{to},\"latency\":{latency}"));
            }
            TraceEventKind::PuRegimeShift { duty } => {
                s.push_str(&format!(",\"duty\":{duty}"));
            }
            TraceEventKind::LinkDegraded { su, factor } => {
                s.push_str(&format!(",\"su\":{su},\"factor\":{factor}"));
            }
            TraceEventKind::Brownout { on } => {
                s.push_str(&format!(",\"on\":{on}"));
            }
            TraceEventKind::PacketsLost { su, count } => {
                s.push_str(&format!(",\"su\":{su},\"count\":{count}"));
            }
        }
        s.push('}');
        s
    }

    /// Header for [`TraceEvent::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> &'static str {
        "time,event,su,peer,outcome,v0,v1"
    }

    /// Flat CSV row: `su` is the acting node, `peer` its counterpart
    /// (receiver / last hop), `v0`/`v1` the kind's scalar payload.
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        let (su, peer, outcome, v0, v1) = match self.kind {
            TraceEventKind::BackoffStart { su, t_i, cw } => (su, None, None, Some(t_i), Some(cw)),
            TraceEventKind::BackoffFreeze { su, remaining }
            | TraceEventKind::BackoffResume { su, remaining } => {
                (su, None, None, Some(remaining), None)
            }
            TraceEventKind::TxStart { su, rx } => (su, Some(rx), None, None, None),
            TraceEventKind::TxEnd { su, rx, outcome } => (su, Some(rx), Some(outcome), None, None),
            TraceEventKind::FairnessWait { su, wait } => (su, None, None, Some(wait), None),
            TraceEventKind::Delivery { origin, via } => (origin, Some(via), None, None, None),
            TraceEventKind::QueueDepth { su, depth } => {
                (su, None, None, Some(f64::from(depth)), None)
            }
            TraceEventKind::PuOn { pu } | TraceEventKind::PuOff { pu } => {
                (pu, None, None, None, None)
            }
            TraceEventKind::PacketGenerated { su }
            | TraceEventKind::SuCrashed { su }
            | TraceEventKind::SuRecovered { su }
            | TraceEventKind::SuPaused { su }
            | TraceEventKind::SuResumed { su } => (su, None, None, None, None),
            TraceEventKind::Reparented { su, to, latency } => {
                (su, Some(to), None, Some(latency), None)
            }
            TraceEventKind::PuRegimeShift { duty } => (0, None, None, Some(duty), None),
            TraceEventKind::LinkDegraded { su, factor } => (su, None, None, Some(factor), None),
            TraceEventKind::Brownout { on } => (0, None, None, Some(f64::from(u8::from(on))), None),
            TraceEventKind::PacketsLost { su, count } => {
                (su, None, None, Some(f64::from(count)), None)
            }
        };
        let fmt_opt_u32 = |v: Option<u32>| v.map_or(String::new(), |v| v.to_string());
        let fmt_opt_f64 = |v: Option<f64>| v.map_or(String::new(), |v| v.to_string());
        format!(
            "{},{},{},{},{},{},{}",
            self.time,
            self.kind.label(),
            su,
            fmt_opt_u32(peer),
            outcome.map_or("", TxOutcome::label),
            fmt_opt_f64(v0),
            fmt_opt_f64(v1),
        )
    }
}

/// Receives every [`TraceEvent`] the engine emits.
///
/// The simulator is generic over its probe (`Simulator<P: Probe>`), so an
/// attached probe is a static call — no dynamic dispatch on the hot path —
/// and the default [`NoopProbe`] erases the instrumentation entirely.
pub trait Probe {
    /// Called at every instrumented engine transition, in event order.
    fn on_event(&mut self, event: &TraceEvent);

    /// Called once when the run ends (task finished, event queue drained,
    /// or time cap hit), with the run's final time.
    fn on_finish(&mut self, end_time: f64) {
        let _ = end_time;
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    fn on_event(&mut self, event: &TraceEvent) {
        (**self).on_event(event);
    }
    fn on_finish(&mut self, end_time: f64) {
        (**self).on_finish(end_time);
    }
}

/// The default probe: does nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    #[inline(always)]
    fn on_event(&mut self, _event: &TraceEvent) {}
}

/// Bounded ring buffer of raw trace events.
///
/// When full, the **oldest** events are dropped (and counted), so a
/// bounded log of a long run keeps its tail — usually the interesting
/// part, since it explains what the network was still waiting on.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl TraceLog {
    /// A log keeping at most `capacity` events (oldest dropped first).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// A log keeping every event. Memory grows with the run; prefer
    /// [`TraceLog::bounded`] for long or periodic-traffic runs.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted to respect the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the log into a contiguous, oldest-first vector.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }

    /// Serializes the retained events as JSONL, one event per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Serializes the retained events as CSV with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(TraceEvent::csv_header());
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }
}

impl Probe for TraceLog {
    fn on_event(&mut self, event: &TraceEvent) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(*event);
    }
}

/// One time bucket of [`TimeSeries`] output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeSeriesPoint {
    /// Bucket index (bucket `b` covers `[b·width, (b+1)·width)`).
    pub bucket: u64,
    /// Bucket start time in seconds.
    pub start: f64,
    /// Fraction of the bucket during which at least one SU transmission
    /// was on the air.
    pub utilization: f64,
    /// Maximum number of simultaneous SU transmissions observed.
    pub max_in_flight: u32,
    /// Sum of all SU queue lengths at the end of the bucket.
    pub total_queue: u32,
}

/// Derives per-bucket utilization / concurrency / queue-depth series from
/// the trace stream.
///
/// Buckets are fixed-width in simulation time (conventionally one PU slot,
/// via [`TimeSeries::per_slot`]). Only buckets that the run actually
/// reached are reported; trailing state is flushed by
/// [`Probe::on_finish`].
#[derive(Clone, Debug)]
pub struct TimeSeries {
    width: f64,
    points: Vec<TimeSeriesPoint>,
    // Rolling state.
    cursor: f64,
    bucket: u64,
    busy_in_bucket: f64,
    in_flight: u32,
    max_in_flight: u32,
    queue_depth: Vec<u32>,
    finished: bool,
}

impl TimeSeries {
    /// A sampler with buckets `width` seconds wide.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is positive and finite.
    #[must_use]
    pub fn new(width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "bucket width must be positive"
        );
        Self {
            width,
            points: Vec::new(),
            cursor: 0.0,
            bucket: 0,
            busy_in_bucket: 0.0,
            in_flight: 0,
            max_in_flight: 0,
            queue_depth: Vec::new(),
            finished: false,
        }
    }

    /// A sampler bucketing by the MAC's PU slot length.
    #[must_use]
    pub fn per_slot(mac: &crate::MacConfig) -> Self {
        Self::new(mac.slot)
    }

    /// The completed buckets, in time order. Empty until the run ends
    /// unless the run outlived at least one bucket.
    #[must_use]
    pub fn points(&self) -> &[TimeSeriesPoint] {
        &self.points
    }

    /// Consumes the sampler into its buckets.
    #[must_use]
    pub fn into_points(self) -> Vec<TimeSeriesPoint> {
        self.points
    }

    /// Advance the rolling window to `t`, closing every bucket boundary
    /// crossed on the way and attributing on-air time to the right bucket.
    fn advance_to(&mut self, t: f64) {
        debug_assert!(t + 1e-12 >= self.cursor, "trace time went backwards");
        let t = t.max(self.cursor);
        loop {
            let bucket_end = (self.bucket + 1) as f64 * self.width;
            if t < bucket_end {
                break;
            }
            if self.in_flight > 0 {
                self.busy_in_bucket += bucket_end - self.cursor;
            }
            self.close_bucket();
            self.cursor = bucket_end;
            self.bucket += 1;
        }
        if self.in_flight > 0 {
            self.busy_in_bucket += t - self.cursor;
        }
        self.cursor = t;
    }

    fn close_bucket(&mut self) {
        self.points.push(TimeSeriesPoint {
            bucket: self.bucket,
            start: self.bucket as f64 * self.width,
            utilization: (self.busy_in_bucket / self.width).clamp(0.0, 1.0),
            max_in_flight: self.max_in_flight,
            total_queue: self.queue_depth.iter().sum(),
        });
        self.busy_in_bucket = 0.0;
        self.max_in_flight = self.in_flight;
    }
}

impl Probe for TimeSeries {
    fn on_event(&mut self, event: &TraceEvent) {
        self.advance_to(event.time);
        match event.kind {
            TraceEventKind::TxStart { .. } => {
                self.in_flight += 1;
                self.max_in_flight = self.max_in_flight.max(self.in_flight);
            }
            TraceEventKind::TxEnd { .. } => {
                debug_assert!(self.in_flight > 0, "TxEnd without TxStart");
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            TraceEventKind::QueueDepth { su, depth } => {
                let su = su as usize;
                if su >= self.queue_depth.len() {
                    self.queue_depth.resize(su + 1, 0);
                }
                self.queue_depth[su] = depth;
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, end_time: f64) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.advance_to(end_time);
        // Close the trailing partial bucket if it saw any time at all.
        if self.cursor > self.bucket as f64 * self.width || self.points.is_empty() {
            let width = self.width;
            let partial = self.cursor - self.bucket as f64 * width;
            self.points.push(TimeSeriesPoint {
                bucket: self.bucket,
                start: self.bucket as f64 * width,
                utilization: if partial > 0.0 {
                    (self.busy_in_bucket / partial).clamp(0.0, 1.0)
                } else {
                    0.0
                },
                max_in_flight: self.max_in_flight,
                total_queue: self.queue_depth.iter().sum(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { time, kind }
    }

    #[test]
    fn noop_probe_is_a_probe() {
        let mut p = NoopProbe;
        p.on_event(&ev(0.0, TraceEventKind::TxStart { su: 1, rx: 0 }));
        p.on_finish(1.0);
    }

    #[test]
    fn trace_log_records_in_order() {
        let mut log = TraceLog::unbounded();
        for i in 0..5u32 {
            log.on_event(&ev(
                f64::from(i),
                TraceEventKind::QueueDepth { su: i, depth: i },
            ));
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped(), 0);
        let events = log.into_events();
        assert_eq!(events[0].time, 0.0);
        assert_eq!(events[4].time, 4.0);
    }

    #[test]
    fn bounded_log_keeps_the_tail() {
        let mut log = TraceLog::bounded(3);
        for i in 0..10u32 {
            log.on_event(&ev(
                f64::from(i),
                TraceEventKind::QueueDepth { su: i, depth: 0 },
            ));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let times: Vec<f64> = log.events().map(|e| e.time).collect();
        assert_eq!(times, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn zero_capacity_log_drops_everything() {
        let mut log = TraceLog::bounded(0);
        log.on_event(&ev(0.0, TraceEventKind::TxStart { su: 1, rx: 0 }));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn jsonl_lines_are_valid_flat_json() {
        let events = [
            ev(
                0.25e-3,
                TraceEventKind::BackoffStart {
                    su: 2,
                    t_i: 1e-4,
                    cw: 5e-4,
                },
            ),
            ev(
                0.5e-3,
                TraceEventKind::BackoffFreeze {
                    su: 2,
                    remaining: 2e-5,
                },
            ),
            ev(
                0.6e-3,
                TraceEventKind::BackoffResume {
                    su: 2,
                    remaining: 2e-5,
                },
            ),
            ev(1e-3, TraceEventKind::TxStart { su: 2, rx: 0 }),
            ev(
                1.5e-3,
                TraceEventKind::TxEnd {
                    su: 2,
                    rx: 0,
                    outcome: TxOutcome::Success,
                },
            ),
            ev(1.5e-3, TraceEventKind::FairnessWait { su: 2, wait: 4e-4 }),
            ev(1.5e-3, TraceEventKind::Delivery { origin: 2, via: 2 }),
            ev(1.5e-3, TraceEventKind::QueueDepth { su: 2, depth: 0 }),
            ev(2e-3, TraceEventKind::PuOn { pu: 1 }),
            ev(3e-3, TraceEventKind::PuOff { pu: 1 }),
            ev(0.0, TraceEventKind::PacketGenerated { su: 2 }),
            ev(4e-3, TraceEventKind::SuCrashed { su: 2 }),
            ev(5e-3, TraceEventKind::SuRecovered { su: 2 }),
            ev(6e-3, TraceEventKind::SuPaused { su: 3 }),
            ev(7e-3, TraceEventKind::SuResumed { su: 3 }),
            ev(
                8e-3,
                TraceEventKind::Reparented {
                    su: 4,
                    to: 1,
                    latency: 2e-3,
                },
            ),
            ev(9e-3, TraceEventKind::PuRegimeShift { duty: 0.6 }),
            ev(1e-2, TraceEventKind::LinkDegraded { su: 2, factor: 0.5 }),
            ev(1.1e-2, TraceEventKind::Brownout { on: true }),
            ev(1.2e-2, TraceEventKind::PacketsLost { su: 2, count: 3 }),
            ev(
                1.3e-2,
                TraceEventKind::TxEnd {
                    su: 2,
                    rx: 0,
                    outcome: TxOutcome::FaultAbort,
                },
            ),
        ];
        for e in &events {
            let line = e.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(
                line.contains(&format!("\"event\":\"{}\"", e.kind.label())),
                "{line}"
            );
            // Flat object: no nesting, balanced quotes.
            assert_eq!(line.matches('{').count(), 1, "{line}");
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        }
    }

    #[test]
    fn csv_rows_have_constant_arity() {
        let header_fields = TraceEvent::csv_header().split(',').count();
        let rows = [
            ev(
                0.0,
                TraceEventKind::BackoffStart {
                    su: 1,
                    t_i: 1e-4,
                    cw: 5e-4,
                },
            ),
            ev(
                0.0,
                TraceEventKind::TxEnd {
                    su: 1,
                    rx: 0,
                    outcome: TxOutcome::PuAbort,
                },
            ),
            ev(0.0, TraceEventKind::Delivery { origin: 3, via: 1 }),
            ev(0.0, TraceEventKind::PuOn { pu: 2 }),
            ev(0.0, TraceEventKind::PacketGenerated { su: 4 }),
            ev(0.0, TraceEventKind::SuCrashed { su: 4 }),
            ev(0.0, TraceEventKind::SuRecovered { su: 4 }),
            ev(0.0, TraceEventKind::SuPaused { su: 4 }),
            ev(0.0, TraceEventKind::SuResumed { su: 4 }),
            ev(
                0.0,
                TraceEventKind::Reparented {
                    su: 4,
                    to: 1,
                    latency: 1e-3,
                },
            ),
            ev(0.0, TraceEventKind::PuRegimeShift { duty: 0.2 }),
            ev(
                0.0,
                TraceEventKind::LinkDegraded {
                    su: 4,
                    factor: 0.25,
                },
            ),
            ev(0.0, TraceEventKind::Brownout { on: false }),
            ev(0.0, TraceEventKind::PacketsLost { su: 4, count: 2 }),
            ev(
                0.0,
                TraceEventKind::TxEnd {
                    su: 4,
                    rx: 0,
                    outcome: TxOutcome::FaultAbort,
                },
            ),
        ];
        for r in &rows {
            assert_eq!(r.to_csv_row().split(',').count(), header_fields);
        }
    }

    #[test]
    fn time_series_tracks_utilization_and_queues() {
        let mut ts = TimeSeries::new(1.0);
        // Bucket 0: on air from t=0.25 to t=0.75 (utilization 0.5).
        ts.on_event(&ev(0.25, TraceEventKind::TxStart { su: 1, rx: 0 }));
        ts.on_event(&ev(
            0.75,
            TraceEventKind::TxEnd {
                su: 1,
                rx: 0,
                outcome: TxOutcome::Success,
            },
        ));
        ts.on_event(&ev(0.75, TraceEventKind::QueueDepth { su: 1, depth: 2 }));
        // Bucket 1: idle, queue drains at t=1.5.
        ts.on_event(&ev(1.5, TraceEventKind::QueueDepth { su: 1, depth: 0 }));
        ts.on_finish(2.0);
        let points = ts.into_points();
        assert_eq!(points.len(), 2);
        assert!((points[0].utilization - 0.5).abs() < 1e-12);
        assert_eq!(points[0].max_in_flight, 1);
        assert_eq!(points[0].total_queue, 2);
        assert!((points[1].utilization - 0.0).abs() < 1e-12);
        assert_eq!(points[1].total_queue, 0);
    }

    #[test]
    fn time_series_splits_on_air_time_across_buckets() {
        let mut ts = TimeSeries::new(1.0);
        // On air from 0.5 to 1.5: half of each bucket.
        ts.on_event(&ev(0.5, TraceEventKind::TxStart { su: 1, rx: 0 }));
        ts.on_event(&ev(
            1.5,
            TraceEventKind::TxEnd {
                su: 1,
                rx: 0,
                outcome: TxOutcome::Success,
            },
        ));
        ts.on_finish(2.0);
        let points = ts.into_points();
        assert_eq!(points.len(), 2);
        assert!((points[0].utilization - 0.5).abs() < 1e-12);
        assert!((points[1].utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_series_concurrency_peaks() {
        let mut ts = TimeSeries::new(1.0);
        ts.on_event(&ev(0.1, TraceEventKind::TxStart { su: 1, rx: 0 }));
        ts.on_event(&ev(0.2, TraceEventKind::TxStart { su: 2, rx: 0 }));
        ts.on_event(&ev(
            0.3,
            TraceEventKind::TxEnd {
                su: 1,
                rx: 0,
                outcome: TxOutcome::CaptureLoss,
            },
        ));
        ts.on_event(&ev(
            0.4,
            TraceEventKind::TxEnd {
                su: 2,
                rx: 0,
                outcome: TxOutcome::Success,
            },
        ));
        ts.on_finish(1.0);
        assert_eq!(ts.points()[0].max_in_flight, 2);
    }

    #[test]
    fn short_run_yields_one_partial_bucket() {
        let mut ts = TimeSeries::new(10.0);
        ts.on_event(&ev(1.0, TraceEventKind::TxStart { su: 1, rx: 0 }));
        ts.on_event(&ev(
            2.0,
            TraceEventKind::TxEnd {
                su: 1,
                rx: 0,
                outcome: TxOutcome::Success,
            },
        ));
        ts.on_finish(4.0);
        let points = ts.into_points();
        assert_eq!(points.len(), 1);
        // 1 of the 4 elapsed seconds on air.
        assert!((points[0].utilization - 0.25).abs() < 1e-12);
    }
}
