use crate::{coolest_tree, ScenarioParams};
use crn_geometry::{Deployment, GridIndex, Point, Region};
use crn_interference::pcr;
use crn_shard::ShardConfig;
use crn_sim::{
    BuildError, InvariantChecker, Probe, RadioParams, SimReport, SimWorld, Simulator, TraceLog,
    Violation, WorldError,
};
use crn_topology::{CollectionTree, TreeError, TreeKind, UnitDiskGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Which data collection algorithm to run over a [`Scenario`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectionAlgorithm {
    /// The paper's Asynchronous Distributed Data Collection (Algorithm 1)
    /// over the CDS-based tree.
    Addc,
    /// The Coolest-path baseline: distributed greedy spectrum-temperature
    /// routing (see [`crate::CoolestStrategy::GreedyLocal`]) with a
    /// conventional CSMA SU-sensing range.
    Coolest,
    /// Ablation: Coolest with genie-aided global routes
    /// ([`crate::CoolestStrategy::OracleDijkstra`]), same baseline MAC.
    CoolestOracle,
    /// Ablation: plain BFS shortest-path tree under ADDC's MAC.
    BfsTree,
}

impl fmt::Display for CollectionAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectionAlgorithm::Addc => "ADDC",
            CollectionAlgorithm::Coolest => "Coolest",
            CollectionAlgorithm::CoolestOracle => "Coolest-oracle",
            CollectionAlgorithm::BfsTree => "BFS-tree",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for CollectionAlgorithm {
    type Err = String;

    /// Parses both the CLI spellings (`addc`, `coolest`, `coolest-oracle`,
    /// `bfs`) and the display names (`ADDC`, `Coolest`, `Coolest-oracle`,
    /// `BFS-tree`), case-insensitively — so exported records and protocol
    /// messages round-trip through the same parser the CLI uses.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "addc" => Ok(CollectionAlgorithm::Addc),
            "coolest" => Ok(CollectionAlgorithm::Coolest),
            "coolest-oracle" => Ok(CollectionAlgorithm::CoolestOracle),
            "bfs" | "bfs-tree" => Ok(CollectionAlgorithm::BfsTree),
            other => Err(format!("unknown algorithm '{other}'")),
        }
    }
}

/// Errors from scenario generation or execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// No connected deployment was found within the attempt budget —
    /// the node density is too low for the transmission radius.
    Disconnected {
        /// Attempts made.
        attempts: usize,
    },
    /// Routing-tree construction failed.
    Tree(TreeError),
    /// Simulator world assembly failed.
    World(WorldError),
    /// Simulator configuration was rejected at build time.
    Sim(BuildError),
    /// The fault workload failed to resolve (invalid plan or churn spec).
    Fault(crn_sim::FaultError),
    /// The simulation oracle observed an invariant violation (only from
    /// [`Scenario::run_checked`]); carries the first violation, which is
    /// usually the root cause.
    Invariant(Box<Violation>),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Disconnected { attempts } => write!(
                f,
                "no connected deployment in {attempts} attempts; increase density or radius"
            ),
            ScenarioError::Tree(e) => write!(f, "tree construction failed: {e}"),
            ScenarioError::World(e) => write!(f, "world assembly failed: {e}"),
            ScenarioError::Sim(e) => write!(f, "simulator configuration rejected: {e}"),
            ScenarioError::Fault(e) => write!(f, "fault workload rejected: {e}"),
            ScenarioError::Invariant(v) => write!(f, "simulation invariant violated: {v}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Disconnected { .. } | ScenarioError::Invariant(_) => None,
            ScenarioError::Tree(e) => Some(e),
            ScenarioError::World(e) => Some(e),
            ScenarioError::Sim(e) => Some(e),
            ScenarioError::Fault(e) => Some(e),
        }
    }
}

impl From<crn_sim::FaultError> for ScenarioError {
    fn from(e: crn_sim::FaultError) -> Self {
        ScenarioError::Fault(e)
    }
}

impl From<TreeError> for ScenarioError {
    fn from(e: TreeError) -> Self {
        ScenarioError::Tree(e)
    }
}

impl From<WorldError> for ScenarioError {
    fn from(e: WorldError) -> Self {
        ScenarioError::World(e)
    }
}

impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        ScenarioError::Sim(e)
    }
}

/// Result of running one data collection task.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectionOutcome {
    /// Algorithm that produced the routing structure.
    pub algorithm: CollectionAlgorithm,
    /// Kind of tree used.
    pub tree_kind: TreeKind,
    /// Height of the routing tree (hops).
    pub tree_height: u32,
    /// Maximum tree degree `Δ`.
    pub tree_max_degree: usize,
    /// Full simulator report (delays, counters, per-flow times).
    pub report: SimReport,
}

/// A generated CRN instance: a connected secondary network, a primary
/// network, and the derived PCR — everything needed to run any of the
/// collection algorithms on identical ground.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct Scenario {
    params: ScenarioParams,
    region: Region,
    su_deployment: Deployment,
    pu_deployment: Deployment,
    graph: UnitDiskGraph,
    pu_index: GridIndex,
    pcr: f64,
    /// Per-algorithm routing tree + assembled world, built once and shared
    /// (`Arc`) across repeated runs of the same scenario — gain-table
    /// construction dominates short runs, so sweeps reuse it.
    prepared: Mutex<HashMap<CollectionAlgorithm, PreparedRun>>,
}

/// Everything [`Scenario::run`] needs that depends only on the algorithm,
/// not the simulation seed.
#[derive(Clone, Debug)]
struct PreparedRun {
    world: Arc<SimWorld>,
    tree_kind: TreeKind,
    tree_height: u32,
    tree_max_degree: usize,
}

impl Clone for Scenario {
    fn clone(&self) -> Self {
        Self {
            params: self.params.clone(),
            region: self.region,
            su_deployment: self.su_deployment.clone(),
            pu_deployment: self.pu_deployment.clone(),
            graph: self.graph.clone(),
            pu_index: self.pu_index.clone(),
            pcr: self.pcr,
            prepared: Mutex::new(
                self.prepared
                    .lock()
                    .expect("prepared cache poisoned")
                    .clone(),
            ),
        }
    }
}

impl Scenario {
    /// Samples deployments until the secondary network is connected (the
    /// paper's standing assumption), then derives the PCR.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Disconnected`] if no connected deployment
    /// appears within `params.max_connectivity_attempts`.
    pub fn generate(params: &ScenarioParams) -> Result<Self, ScenarioError> {
        let region = Region::square(params.area_side);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let attempts = params.max_connectivity_attempts.max(1);
        for _ in 0..attempts {
            let su_deployment = Deployment::uniform(region, params.num_sus + 1, &mut rng);
            let graph = UnitDiskGraph::build(&su_deployment, params.phy.su_radius());
            if !graph.is_connected() {
                continue;
            }
            let pu_deployment = Deployment::uniform(region, params.num_pus, &mut rng);
            let pu_index = GridIndex::build(pu_deployment.points(), region, params.phy.su_radius());
            let pcr = pcr::carrier_sensing_range(&params.phy, params.pcr_constants);
            return Ok(Self {
                params: params.clone(),
                region,
                su_deployment,
                pu_deployment,
                graph,
                pu_index,
                pcr,
                prepared: Mutex::new(HashMap::new()),
            });
        }
        Err(ScenarioError::Disconnected { attempts })
    }

    /// The generating parameters.
    #[must_use]
    pub fn params(&self) -> &ScenarioParams {
        &self.params
    }

    /// Deployment region.
    #[must_use]
    pub fn region(&self) -> Region {
        self.region
    }

    /// The secondary-network graph `G_s` (node 0 is the base station).
    #[must_use]
    pub fn graph(&self) -> &UnitDiskGraph {
        &self.graph
    }

    /// SU positions (node 0 is the base station).
    #[must_use]
    pub fn su_positions(&self) -> &[Point] {
        self.su_deployment.points()
    }

    /// PU positions.
    #[must_use]
    pub fn pu_positions(&self) -> &[Point] {
        self.pu_deployment.points()
    }

    /// The derived Proper Carrier-sensing Range `κ·r`.
    #[must_use]
    pub fn pcr(&self) -> f64 {
        self.pcr
    }

    /// Builds the routing tree for `algorithm`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Tree`] if construction fails (cannot
    /// happen for a connected graph).
    pub fn tree(&self, algorithm: CollectionAlgorithm) -> Result<CollectionTree, ScenarioError> {
        let tree = match algorithm {
            CollectionAlgorithm::Addc => CollectionTree::cds(&self.graph, 0)?,
            CollectionAlgorithm::BfsTree => CollectionTree::bfs(&self.graph, 0)?,
            // The distributed baseline estimates spectrum temperature from
            // its own carrier-sensing observations (range factor·r); only
            // the genie-aided oracle variant sees PCR-wide heat.
            CollectionAlgorithm::Coolest => coolest_tree(
                &self.graph,
                &self.pu_index,
                self.params.baseline_su_sense_factor * self.params.phy.su_radius(),
                self.params.activity.duty_cycle(),
            )?,
            CollectionAlgorithm::CoolestOracle => crate::coolest_tree_with(
                &self.graph,
                &self.pu_index,
                self.pcr,
                self.params.activity.duty_cycle(),
                crate::CoolestStrategy::OracleDijkstra,
            )?,
        };
        Ok(tree)
    }

    /// Runs a full data collection task under `algorithm` with the
    /// scenario's derived simulation seed.
    ///
    /// # Errors
    ///
    /// Propagates tree or world assembly failures.
    pub fn run(&self, algorithm: CollectionAlgorithm) -> Result<CollectionOutcome, ScenarioError> {
        // Distinct from the deployment stream but common to algorithms, so
        // comparisons see the same primary-network behaviour profile.
        self.run_with_seed(
            algorithm,
            self.params.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Like [`Scenario::run`], with the SIR plane spread across spatial
    /// shards per `shards` (see `crn_shard`). Sharded runs are
    /// **bit-identical** to sequential ones — same outcome, same report —
    /// so this only changes how the work is executed. Falls back to the
    /// sequential engine when `shards` resolves to no plane (sequential
    /// mode, single core on `auto`, or an exact-model world without the
    /// sparse reverse index).
    ///
    /// # Errors
    ///
    /// Propagates tree or world assembly failures.
    pub fn run_sharded(
        &self,
        algorithm: CollectionAlgorithm,
        shards: &ShardConfig,
    ) -> Result<CollectionOutcome, ScenarioError> {
        let sim_seed = self.params.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let (outcome, _noop) = self.run_probed_sharded(
            algorithm,
            sim_seed,
            crn_sim::Traffic::Snapshot,
            crn_sim::NoopProbe,
            shards,
        )?;
        Ok(outcome)
    }

    /// Runs **continuous data collection**: `snapshots` rounds of one
    /// packet per SU, generated every `interval_slots` slots. The
    /// steady-state [`SimReport::capacity_fraction`] of such a run
    /// exercises the paper's data collection *capacity* (Theorem 2's
    /// Ω-bound), not just the single-snapshot delay.
    ///
    /// # Errors
    ///
    /// Propagates tree or world assembly failures.
    ///
    /// # Panics
    ///
    /// Panics if `interval_slots` is not positive or `snapshots` is zero.
    pub fn run_continuous(
        &self,
        algorithm: CollectionAlgorithm,
        interval_slots: f64,
        snapshots: u32,
    ) -> Result<CollectionOutcome, ScenarioError> {
        let traffic = crn_sim::Traffic::Periodic {
            interval: interval_slots * self.params.mac.slot,
            snapshots,
        };
        self.run_inner(
            algorithm,
            self.params.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            traffic,
        )
    }

    /// Like [`Scenario::run`] but with an explicit simulator seed (used by
    /// repetition sweeps).
    ///
    /// # Errors
    ///
    /// Propagates tree or world assembly failures.
    pub fn run_with_seed(
        &self,
        algorithm: CollectionAlgorithm,
        sim_seed: u64,
    ) -> Result<CollectionOutcome, ScenarioError> {
        self.run_inner(algorithm, sim_seed, crn_sim::Traffic::Snapshot)
    }

    /// Like [`Scenario::run`], additionally capturing the run's full
    /// [`TraceLog`] (the simulator's event-level trace). The run uses the
    /// same derived seed as [`Scenario::run`], so the returned outcome —
    /// and the delivery events inside the trace — match a plain `run`
    /// exactly.
    ///
    /// # Errors
    ///
    /// Propagates tree or world assembly failures.
    pub fn run_traced(
        &self,
        algorithm: CollectionAlgorithm,
    ) -> Result<(CollectionOutcome, TraceLog), ScenarioError> {
        self.run_probed(
            algorithm,
            self.params.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            crn_sim::Traffic::Snapshot,
            TraceLog::unbounded(),
        )
    }

    fn run_inner(
        &self,
        algorithm: CollectionAlgorithm,
        sim_seed: u64,
        traffic: crn_sim::Traffic,
    ) -> Result<CollectionOutcome, ScenarioError> {
        let (outcome, _noop) = self.run_probed(algorithm, sim_seed, traffic, crn_sim::NoopProbe)?;
        Ok(outcome)
    }

    /// The assembled simulator world for `algorithm`, built on first use
    /// and shared (`Arc`) across every later run of this scenario.
    ///
    /// # Errors
    ///
    /// Propagates tree or world assembly failures.
    pub fn world(&self, algorithm: CollectionAlgorithm) -> Result<Arc<SimWorld>, ScenarioError> {
        Ok(self.prepared(algorithm)?.world)
    }

    /// Returns the cached tree + world for `algorithm`, building (and
    /// caching) them on first use.
    fn prepared(&self, algorithm: CollectionAlgorithm) -> Result<PreparedRun, ScenarioError> {
        if let Some(hit) = self
            .prepared
            .lock()
            .expect("prepared cache poisoned")
            .get(&algorithm)
        {
            return Ok(hit.clone());
        }
        let tree = self.tree(algorithm)?;
        let parents: Vec<Option<u32>> = (0..self.graph.len() as u32)
            .map(|u| tree.parent(u))
            .collect();
        // PU protection (sensing the primary network over the PCR) is
        // mandatory for every algorithm; the SU-coordination range is the
        // PCR only for algorithms that have it — the Coolest baseline uses
        // a conventional CSMA range (see ScenarioParams docs).
        let su_sense = match algorithm {
            CollectionAlgorithm::Addc | CollectionAlgorithm::BfsTree => self.pcr,
            CollectionAlgorithm::Coolest | CollectionAlgorithm::CoolestOracle => {
                (self.params.baseline_su_sense_factor * self.params.phy.su_radius())
                    .max(self.params.phy.su_radius())
            }
        };
        let world = SimWorld::builder(self.region)
            .su_positions(self.su_deployment.points().to_vec())
            .pu_positions(self.pu_deployment.points().to_vec())
            .parents(parents)
            .phy(self.params.phy)
            .pu_sense_range(self.pcr)
            .su_sense_range(su_sense)
            .interference(self.params.interference)
            .build()?;
        let run = PreparedRun {
            world: Arc::new(world),
            tree_kind: tree.kind(),
            tree_height: tree.height(),
            tree_max_degree: tree.max_degree(),
        };
        self.prepared
            .lock()
            .expect("prepared cache poisoned")
            .insert(algorithm, run.clone());
        Ok(run)
    }

    /// Derives the scenario for `params` from this one, reusing the
    /// deployment, connectivity graph, and — where the routing tree's
    /// inputs are unchanged — the prepared per-algorithm worlds via
    /// [`SimWorld::recustomize`]. The result is guaranteed bit-identical
    /// to [`Scenario::generate`] on `params`: if the parameters differ in
    /// any topology-determining field
    /// ([`ScenarioParams::topology_key`]), this simply falls back to a
    /// full `generate`.
    ///
    /// This is the cheap path behind radio-axis sweeps and the serve
    /// layer's topology cache tier: a power/alpha/activity/interference
    /// change skips deployment sampling, graph construction, and (for
    /// structural trees) tree + gain-table rebuilds.
    ///
    /// # Errors
    ///
    /// Propagates generation or world-customization failures.
    pub fn recustomized(&self, params: &ScenarioParams) -> Result<Self, ScenarioError> {
        if params.topology_key() != self.params.topology_key() {
            return Scenario::generate(params);
        }
        let pcr = pcr::carrier_sensing_range(&params.phy, params.pcr_constants);
        let same_duty =
            params.activity.duty_cycle().to_bits() == self.params.activity.duty_cycle().to_bits();
        let heat_range = |p: &ScenarioParams| p.baseline_su_sense_factor * p.phy.su_radius();
        let same_heat = heat_range(params).to_bits() == heat_range(&self.params).to_bits();
        let same_pcr = pcr.to_bits() == self.pcr.to_bits();

        let mut prepared = HashMap::new();
        for (&alg, old) in self
            .prepared
            .lock()
            .expect("prepared cache poisoned")
            .iter()
        {
            // Carry a prepared world only when the algorithm's tree would
            // come out identical; otherwise drop it and let `prepared()`
            // lazily rebuild from the shared graph.
            let tree_unchanged = match alg {
                // Structural trees depend only on the graph.
                CollectionAlgorithm::Addc | CollectionAlgorithm::BfsTree => true,
                // Heat-based trees also read the sensing range and the PU
                // duty cycle.
                CollectionAlgorithm::Coolest => same_heat && same_duty,
                CollectionAlgorithm::CoolestOracle => same_pcr && same_duty,
            };
            if !tree_unchanged {
                continue;
            }
            let su_sense = match alg {
                CollectionAlgorithm::Addc | CollectionAlgorithm::BfsTree => pcr,
                CollectionAlgorithm::Coolest | CollectionAlgorithm::CoolestOracle => {
                    heat_range(params).max(params.phy.su_radius())
                }
            };
            let world = old.world.recustomize(RadioParams {
                phy: params.phy,
                pu_sense_range: pcr,
                su_sense_range: su_sense,
                interference: params.interference,
            })?;
            prepared.insert(
                alg,
                PreparedRun {
                    world: Arc::new(world),
                    ..old.clone()
                },
            );
        }
        Ok(Self {
            params: params.clone(),
            region: self.region,
            su_deployment: self.su_deployment.clone(),
            pu_deployment: self.pu_deployment.clone(),
            graph: self.graph.clone(),
            pu_index: self.pu_index.clone(),
            pcr,
            prepared: Mutex::new(prepared),
        })
    }

    /// Runs a full data collection task under `algorithm` with the live
    /// simulation oracle attached: an [`InvariantChecker`] audits packet
    /// conservation, the concurrent-set/SIR property, PU protection, and
    /// scheduler hygiene on every trace event. The checker is returned for
    /// inspection (e.g. [`InvariantChecker::events_checked`]).
    ///
    /// The run itself is identical to [`Scenario::run`] — probes observe,
    /// they never perturb.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invariant`] carrying the first violation
    /// if the oracle caught any, besides propagating tree/world/simulator
    /// assembly failures.
    pub fn run_checked(
        &self,
        algorithm: CollectionAlgorithm,
    ) -> Result<(CollectionOutcome, InvariantChecker), ScenarioError> {
        self.run_checked_sharded(algorithm, &ShardConfig::default())
    }

    /// [`Scenario::run_checked`] over the sharded SIR plane (see
    /// [`Scenario::run_sharded`]): the trace-level oracle holds sharded
    /// execution to the same invariants as sequential runs.
    ///
    /// # Errors
    ///
    /// As [`Scenario::run_checked`].
    pub fn run_checked_sharded(
        &self,
        algorithm: CollectionAlgorithm,
        shards: &ShardConfig,
    ) -> Result<(CollectionOutcome, InvariantChecker), ScenarioError> {
        let sim_seed = self.params.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let checker = InvariantChecker::new(self.world(algorithm)?, self.params.mac).with_repro(
            self.params.seed,
            format!(
                "n={} N={} side={} alg={algorithm}",
                self.params.num_sus, self.params.num_pus, self.params.area_side
            ),
        );
        let (outcome, oracle) = self.run_probed_sharded(
            algorithm,
            sim_seed,
            crn_sim::Traffic::Snapshot,
            checker,
            shards,
        )?;
        match oracle.first_violation() {
            Some(v) => Err(ScenarioError::Invariant(Box::new(v.clone()))),
            None => Ok((outcome, oracle)),
        }
    }

    /// Shared run path: fetches the cached world for `algorithm`, attaches
    /// `probe`, runs, and returns the probe alongside the outcome. This is
    /// the generic backbone under [`Scenario::run`], [`Scenario::run_traced`],
    /// and [`Scenario::run_checked`] — bring your own [`Probe`] for anything
    /// they don't cover.
    ///
    /// # Errors
    ///
    /// Propagates tree, world, or simulator assembly failures.
    pub fn run_probed<P: Probe>(
        &self,
        algorithm: CollectionAlgorithm,
        sim_seed: u64,
        traffic: crn_sim::Traffic,
        probe: P,
    ) -> Result<(CollectionOutcome, P), ScenarioError> {
        self.run_probed_sharded(algorithm, sim_seed, traffic, probe, &ShardConfig::default())
    }

    /// [`Scenario::run_probed`] over the sharded SIR plane (see
    /// [`Scenario::run_sharded`]). The generic backbone under every other
    /// run method.
    ///
    /// # Errors
    ///
    /// Propagates tree, world, or simulator assembly failures.
    pub fn run_probed_sharded<P: Probe>(
        &self,
        algorithm: CollectionAlgorithm,
        sim_seed: u64,
        traffic: crn_sim::Traffic,
        probe: P,
        shards: &ShardConfig,
    ) -> Result<(CollectionOutcome, P), ScenarioError> {
        let prepared = self.prepared(algorithm)?;
        // Fault schedules resolve against the *master* seed, not the sim
        // seed, so algorithm comparisons and repetition sweeps face the
        // same churn workload.
        let faults = self.params.faults.resolve(
            self.params.num_sus,
            self.params.mac.slot,
            self.params.seed,
        )?;
        let mut builder = Simulator::builder(Arc::clone(&prepared.world))
            .mac(self.params.mac)
            .activity(self.params.activity)
            .seed(sim_seed)
            .traffic(traffic)
            .faults(faults);
        if let Some(plane) = crn_shard::build_plane(&prepared.world, &self.params.mac, shards) {
            builder = builder.sir_plane(plane);
        }
        let (report, probe): (SimReport, P) = builder.probe(probe).build()?.run_with_probe();
        Ok((
            CollectionOutcome {
                algorithm,
                tree_kind: prepared.tree_kind,
                tree_height: prepared.tree_height,
                tree_max_degree: prepared.tree_max_degree,
                report,
            },
            probe,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(seed: u64) -> ScenarioParams {
        ScenarioParams::builder()
            .num_sus(60)
            .num_pus(12)
            .area_side(45.0)
            .seed(seed)
            .build()
    }

    #[test]
    fn generate_produces_connected_graph() {
        let s = Scenario::generate(&small_params(1)).unwrap();
        assert!(s.graph().is_connected());
        assert_eq!(s.graph().len(), 61);
        assert_eq!(s.pu_positions().len(), 12);
        assert!(s.pcr() > s.params().phy.su_radius());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(&small_params(5)).unwrap();
        let b = Scenario::generate(&small_params(5)).unwrap();
        assert_eq!(a.su_positions(), b.su_positions());
        assert_eq!(a.pu_positions(), b.pu_positions());
    }

    #[test]
    fn impossible_connectivity_errors() {
        let p = ScenarioParams::builder()
            .num_sus(5)
            .num_pus(0)
            .area_side(500.0)
            .max_connectivity_attempts(3)
            .build();
        assert_eq!(
            Scenario::generate(&p).unwrap_err(),
            ScenarioError::Disconnected { attempts: 3 }
        );
    }

    #[test]
    fn empty_fault_plan_reproduces_reports_bit_for_bit() {
        // FaultsConfig::None and an explicit empty plan must both be
        // byte-identical to the fault-unaware path (report PartialEq
        // compares every float bit-exactly).
        let baseline = Scenario::generate(&small_params(3))
            .unwrap()
            .run(CollectionAlgorithm::Addc)
            .unwrap();
        let mut with_plan = small_params(3);
        with_plan.faults = crn_sim::FaultsConfig::Plan(crn_sim::FaultPlan::empty());
        let planned = Scenario::generate(&with_plan)
            .unwrap()
            .run(CollectionAlgorithm::Addc)
            .unwrap();
        assert_eq!(baseline, planned);
    }

    #[test]
    fn run_sharded_is_bit_identical_at_every_mode() {
        // The exact path the CLI (`--shards`) and serve layer take:
        // whatever the shard mode, the outcome must equal `run`'s
        // bit-for-bit (report PartialEq compares floats exactly) —
        // which is also what licenses serve to cache across modes.
        let mut p = small_params(6);
        p.interference = crn_sim::InterferenceModel::Truncated { epsilon: 0.1 };
        let s = Scenario::generate(&p).unwrap();
        let baseline = s.run(CollectionAlgorithm::Addc).unwrap();
        for mode in [
            crn_shard::ShardMode::Sequential,
            crn_shard::ShardMode::Auto,
            crn_shard::ShardMode::Fixed(1),
            crn_shard::ShardMode::Fixed(2),
            crn_shard::ShardMode::Fixed(4),
        ] {
            let sharded = s
                .run_sharded(CollectionAlgorithm::Addc, &ShardConfig::with_mode(mode))
                .unwrap();
            assert_eq!(baseline, sharded, "shards={mode} diverged from run()");
        }
        let (checked, oracle) = s
            .run_checked_sharded(
                CollectionAlgorithm::Addc,
                &ShardConfig::with_mode(crn_shard::ShardMode::Fixed(3)),
            )
            .unwrap();
        assert!(oracle.is_clean());
        assert_eq!(baseline, checked);
    }

    #[test]
    fn churn_scenario_passes_the_oracle_and_loses_accountably() {
        let mut p = small_params(4);
        p.faults = "churn:4".parse().unwrap();
        let s = Scenario::generate(&p).unwrap();
        let (o, oracle) = s.run_checked(CollectionAlgorithm::Addc).unwrap();
        assert!(oracle.is_clean());
        let r = &o.report;
        assert!(r.packets_delivered as u64 + r.packets_lost <= 60);
        if r.finished {
            assert_eq!(
                r.packets_delivered as u64 + r.packets_lost,
                60,
                "a finished run accounts for every packet"
            );
        }
        assert!(r.delivery_ratio() <= 1.0);
    }

    #[test]
    fn churn_workload_hits_every_algorithm() {
        // The schedule resolves from the master seed, so ADDC and the
        // baseline face the same crash script (how many packets each
        // loses still differs with their queue states — only the script
        // is shared). A heavy rate must visibly perturb both.
        let mut p = small_params(6);
        p.faults = "churn:25".parse().unwrap();
        let s = Scenario::generate(&p).unwrap();
        for alg in [CollectionAlgorithm::Addc, CollectionAlgorithm::Coolest] {
            let o = s.run(alg).unwrap();
            assert!(
                o.report.packets_lost + o.report.fault_aborts > 0,
                "{alg:?} saw no churn effect"
            );
        }
    }

    #[test]
    fn addc_collects_everything() {
        let s = Scenario::generate(&small_params(2)).unwrap();
        let o = s.run(CollectionAlgorithm::Addc).unwrap();
        assert!(o.report.finished);
        assert_eq!(o.report.packets_delivered, 60);
        assert_eq!(o.tree_kind, TreeKind::Cds);
        assert!(o.tree_height >= 1);
    }

    #[test]
    fn coolest_collects_everything() {
        let s = Scenario::generate(&small_params(2)).unwrap();
        let o = s.run(CollectionAlgorithm::Coolest).unwrap();
        assert!(o.report.finished);
        assert_eq!(o.report.packets_delivered, 60);
        assert_eq!(o.tree_kind, TreeKind::Custom);
    }

    #[test]
    fn bfs_tree_collects_everything() {
        let s = Scenario::generate(&small_params(2)).unwrap();
        let o = s.run(CollectionAlgorithm::BfsTree).unwrap();
        assert!(o.report.finished);
        assert_eq!(o.report.packets_delivered, 60);
        assert_eq!(o.tree_kind, TreeKind::Bfs);
    }

    #[test]
    fn runs_share_the_deployment_across_algorithms() {
        let s = Scenario::generate(&small_params(3)).unwrap();
        let addc = s.tree(CollectionAlgorithm::Addc).unwrap();
        let cool = s.tree(CollectionAlgorithm::Coolest).unwrap();
        assert_eq!(addc.len(), cool.len());
    }

    #[test]
    fn explicit_sim_seed_changes_outcome() {
        let s = Scenario::generate(&small_params(4)).unwrap();
        let a = s.run_with_seed(CollectionAlgorithm::Addc, 1).unwrap();
        let b = s.run_with_seed(CollectionAlgorithm::Addc, 2).unwrap();
        assert_ne!(a.report.delay, b.report.delay);
    }

    #[test]
    fn continuous_collection_delivers_every_snapshot() {
        let s = Scenario::generate(&small_params(6)).unwrap();
        let o = s
            .run_continuous(CollectionAlgorithm::Addc, 2000.0, 3)
            .unwrap();
        assert!(o.report.finished);
        assert_eq!(o.report.packets_expected, 180);
        assert_eq!(o.report.packets_delivered, 180);
        // Steady-state capacity counts all snapshots.
        assert!(o.report.capacity_fraction() > 0.0);
    }

    #[test]
    fn tighter_intervals_raise_peak_queues() {
        let s = Scenario::generate(&small_params(7)).unwrap();
        let slow = s
            .run_continuous(CollectionAlgorithm::Addc, 5000.0, 3)
            .unwrap();
        let fast = s
            .run_continuous(CollectionAlgorithm::Addc, 50.0, 3)
            .unwrap();
        assert!(
            fast.report.peak_queue >= slow.report.peak_queue,
            "fast {} < slow {}",
            fast.report.peak_queue,
            slow.report.peak_queue
        );
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let s = Scenario::generate(&small_params(8)).unwrap();
        let plain = s.run(CollectionAlgorithm::Addc).unwrap();
        let (traced, log) = s.run_traced(CollectionAlgorithm::Addc).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        // Every delivery in the report appears as a Delivery event at the
        // recorded first-delivery time.
        let mut first = vec![None; plain.report.delivery_times.len()];
        for e in log.events() {
            if let crn_sim::TraceEventKind::Delivery { origin, .. } = e.kind {
                if first[origin as usize].is_none() {
                    first[origin as usize] = Some(e.time);
                }
            }
        }
        assert_eq!(first, plain.report.delivery_times);
    }

    #[test]
    fn checked_runs_are_invariant_clean() {
        use crn_sim::InterferenceModel;
        let s = Scenario::generate(&small_params(2)).unwrap();
        for alg in [CollectionAlgorithm::Addc, CollectionAlgorithm::Coolest] {
            let (o, oracle) = s.run_checked(alg).unwrap();
            assert!(o.report.finished, "{alg}");
            assert!(oracle.events_checked() > 0);
            assert!(oracle.is_clean());
        }
        // The oracle rechecks SIR under the *exact* model even when the
        // engine runs truncated tables — the Lemma-2 certificate holds.
        let mut b = ScenarioParams::builder();
        b.num_sus(60)
            .num_pus(12)
            .area_side(45.0)
            .seed(2)
            .interference(InterferenceModel::Truncated { epsilon: 0.1 });
        let t = Scenario::generate(&b.build()).unwrap();
        let (o, oracle) = t.run_checked(CollectionAlgorithm::Addc).unwrap();
        assert!(o.report.finished);
        assert!(oracle.is_clean());
    }

    #[test]
    fn worlds_are_cached_and_shared_across_runs() {
        let s = Scenario::generate(&small_params(2)).unwrap();
        let a = s.world(CollectionAlgorithm::Addc).unwrap();
        let b = s.world(CollectionAlgorithm::Addc).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same algorithm must share one world");
        let c = s.world(CollectionAlgorithm::Coolest).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "algorithms get distinct worlds");
        // A clone carries the cache but stays independent; runs agree.
        let o1 = s.run(CollectionAlgorithm::Addc).unwrap();
        let o2 = s.clone().run(CollectionAlgorithm::Addc).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn truncated_interference_matches_exact_at_scaled_fig6_params() {
        use crn_sim::InterferenceModel;
        // Fig. 6 densities (n/A = 0.032, N/A = 0.0064) on a 62.5-side
        // region, paper phy/activity/MAC defaults throughout.
        for seed in [11, 12] {
            let mut b = ScenarioParams::builder();
            b.num_sus(125).num_pus(25).area_side(62.5).seed(seed);
            let exact = Scenario::generate(&b.build()).unwrap();
            b.interference(InterferenceModel::Truncated { epsilon: 0.1 });
            let truncated = Scenario::generate(&b.build()).unwrap();
            for alg in [CollectionAlgorithm::Addc, CollectionAlgorithm::Coolest] {
                let e = exact.run(alg).unwrap();
                let t = truncated.run(alg).unwrap();
                assert_eq!(e, t, "seed {seed}, {alg}");
            }
        }
    }

    #[test]
    fn recustomized_matches_fresh_generate_bitwise() {
        use crn_sim::InterferenceModel;
        for model in [
            InterferenceModel::Exact,
            InterferenceModel::Truncated { epsilon: 0.1 },
        ] {
            let mut base = small_params(9);
            base.interference = model;
            let s = Scenario::generate(&base).unwrap();
            // Populate the prepared cache so recustomization has worlds to
            // carry.
            s.run(CollectionAlgorithm::Addc).unwrap();
            s.run(CollectionAlgorithm::Coolest).unwrap();

            // Radio-only delta: SU transmit power.
            let mut next = base.clone();
            next.phy = crn_interference::PhyParams::builder()
                .su_power(25.0)
                .build()
                .unwrap();
            assert_eq!(next.topology_key(), base.topology_key());
            let cheap = s.recustomized(&next).unwrap();
            let fresh = Scenario::generate(&next).unwrap();
            assert_eq!(cheap.su_positions(), fresh.su_positions());
            for alg in [CollectionAlgorithm::Addc, CollectionAlgorithm::Coolest] {
                assert_eq!(
                    cheap.run(alg).unwrap(),
                    fresh.run(alg).unwrap(),
                    "{alg}: recustomized run diverged from a fresh generate"
                );
            }
            // The carried worlds share the original topology allocation.
            let old_world = s.world(CollectionAlgorithm::Addc).unwrap();
            let new_world = cheap.world(CollectionAlgorithm::Addc).unwrap();
            assert!(Arc::ptr_eq(old_world.topology(), new_world.topology()));
        }
    }

    #[test]
    fn recustomized_rebuilds_heat_trees_when_their_inputs_move() {
        // A duty-cycle change leaves structural trees alone but changes
        // the Coolest heat field: the carried scenario must still match a
        // fresh generate for every algorithm.
        let base = small_params(10);
        let s = Scenario::generate(&base).unwrap();
        s.run(CollectionAlgorithm::Addc).unwrap();
        s.run(CollectionAlgorithm::Coolest).unwrap();
        let mut next = base.clone();
        next.activity = crn_spectrum::PuActivity::bernoulli(0.45).unwrap();
        let cheap = s.recustomized(&next).unwrap();
        let fresh = Scenario::generate(&next).unwrap();
        for alg in [CollectionAlgorithm::Addc, CollectionAlgorithm::Coolest] {
            assert_eq!(cheap.run(alg).unwrap(), fresh.run(alg).unwrap(), "{alg}");
        }
    }

    #[test]
    fn recustomized_falls_back_to_generate_on_topology_change() {
        let base = small_params(11);
        let s = Scenario::generate(&base).unwrap();
        let mut next = base.clone();
        next.num_sus += 5;
        assert_ne!(next.topology_key(), base.topology_key());
        let rebuilt = s.recustomized(&next).unwrap();
        let fresh = Scenario::generate(&next).unwrap();
        assert_eq!(rebuilt.su_positions(), fresh.su_positions());
        assert_eq!(
            rebuilt.run(CollectionAlgorithm::Addc).unwrap(),
            fresh.run(CollectionAlgorithm::Addc).unwrap()
        );
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(CollectionAlgorithm::Addc.to_string(), "ADDC");
        assert_eq!(CollectionAlgorithm::Coolest.to_string(), "Coolest");
        assert_eq!(CollectionAlgorithm::BfsTree.to_string(), "BFS-tree");
    }

    #[test]
    fn algorithm_parses_cli_and_display_spellings() {
        for alg in [
            CollectionAlgorithm::Addc,
            CollectionAlgorithm::Coolest,
            CollectionAlgorithm::CoolestOracle,
            CollectionAlgorithm::BfsTree,
        ] {
            let display: CollectionAlgorithm = alg.to_string().parse().unwrap();
            assert_eq!(display, alg, "display name must round-trip");
        }
        assert_eq!(
            "addc".parse::<CollectionAlgorithm>().unwrap(),
            CollectionAlgorithm::Addc
        );
        assert_eq!(
            "bfs".parse::<CollectionAlgorithm>().unwrap(),
            CollectionAlgorithm::BfsTree
        );
        assert!("magic".parse::<CollectionAlgorithm>().is_err());
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = ScenarioError::Disconnected { attempts: 2 };
        assert!(e.to_string().contains("2 attempts"));
        assert!(e.source().is_none());
        let e: ScenarioError = TreeError::EmptyGraph.into();
        assert!(e.source().is_some());
    }
}
