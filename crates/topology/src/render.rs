//! ASCII rendering of deployments and collection trees — a zero-dependency
//! way to *see* a scenario in a terminal or a bug report.
//!
//! Nodes are projected onto a character grid. With a tree supplied, roles
//! are distinguished: `B` base station, `D` dominator, `C` connector,
//! `.` dominatee (or `*` for plain nodes when the tree carries no roles).

use crate::{CollectionTree, Role, UnitDiskGraph};

/// Renders `graph` (and optionally the roles of `tree`) onto a `cols`
/// wide character grid whose aspect ratio follows the bounding box of the
/// node positions. Returns a newline-separated string plus a legend.
///
/// When several nodes land on the same cell the most "important" one wins
/// (base station > dominator > connector > dominatee).
///
/// # Panics
///
/// Panics if `cols < 2`, the graph is empty, or `tree` (when given) has a
/// different node count.
#[must_use]
pub fn render_ascii(graph: &UnitDiskGraph, tree: Option<&CollectionTree>, cols: usize) -> String {
    assert!(cols >= 2, "need at least 2 columns");
    assert!(!graph.is_empty(), "cannot render an empty graph");
    if let Some(t) = tree {
        assert_eq!(t.len(), graph.len(), "tree/graph node count mismatch");
    }

    let xs = graph.positions().iter().map(|p| p.x);
    let ys = graph.positions().iter().map(|p| p.y);
    let (min_x, max_x) = (
        xs.clone().fold(f64::INFINITY, f64::min),
        xs.fold(f64::NEG_INFINITY, f64::max),
    );
    let (min_y, max_y) = (
        ys.clone().fold(f64::INFINITY, f64::min),
        ys.fold(f64::NEG_INFINITY, f64::max),
    );
    let width = (max_x - min_x).max(1e-9);
    let height = (max_y - min_y).max(1e-9);
    // Terminal cells are ~2x taller than wide; halve the row count.
    let rows = ((cols as f64 * height / width) / 2.0).ceil().max(1.0) as usize;

    let rank = |u: u32| -> (u8, char) {
        if u == 0 {
            return (3, 'B');
        }
        match tree.and_then(|t| t.role(u)) {
            Some(Role::Dominator) => (2, 'D'),
            Some(Role::Connector) => (1, 'C'),
            Some(Role::Dominatee) => (0, '.'),
            None => (0, '*'),
        }
    };

    let mut grid = vec![vec![(0u8, ' '); cols]; rows];
    for u in 0..graph.len() as u32 {
        let p = graph.position(u);
        let col = (((p.x - min_x) / width) * (cols - 1) as f64).round() as usize;
        let row = (((p.y - min_y) / height) * (rows - 1) as f64).round() as usize;
        // Grid rows print top-down; flip y so north stays up.
        let row = rows - 1 - row;
        let (r, ch) = rank(u);
        let cell = &mut grid[row][col];
        if cell.1 == ' ' || r > cell.0 {
            *cell = (r, ch);
        }
    }

    let mut out = String::with_capacity(rows * (cols + 1) + 64);
    for row in grid {
        for (_, ch) in row {
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(if tree.is_some_and(|t| t.roles().is_some()) {
        "legend: B base station, D dominator, C connector, . dominatee\n"
    } else {
        "legend: B base station, * node\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_geometry::{Deployment, Point, Region};
    use rand::SeedableRng;

    fn connected_graph() -> UnitDiskGraph {
        let mut seed = 0;
        loop {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let d = Deployment::uniform(Region::square(50.0), 120, &mut rng);
            let g = UnitDiskGraph::build(&d, 9.0);
            if g.is_connected() {
                return g;
            }
            seed += 1;
        }
    }

    #[test]
    fn renders_all_roles() {
        let g = connected_graph();
        let t = CollectionTree::cds(&g, 0).unwrap();
        let art = render_ascii(&g, Some(&t), 60);
        assert!(art.contains('B'));
        assert!(art.contains('D'));
        assert!(art.contains('.'));
        assert!(art.contains("legend"));
        assert!(art.contains("dominator"));
    }

    #[test]
    fn respects_column_budget() {
        let g = connected_graph();
        let art = render_ascii(&g, None, 40);
        for line in art.lines().filter(|l| !l.starts_with("legend")) {
            assert!(line.chars().count() <= 40, "line too wide: {line:?}");
        }
    }

    #[test]
    fn plain_graph_uses_stars() {
        let g = connected_graph();
        let art = render_ascii(&g, None, 40);
        assert!(art.contains('*'));
        assert!(!art.contains('D'));
    }

    #[test]
    fn single_node_renders() {
        let d = Deployment::from_points(Region::square(1.0), vec![Point::new(0.5, 0.5)]);
        let g = UnitDiskGraph::build(&d, 1.0);
        let art = render_ascii(&g, None, 10);
        assert!(art.contains('B'));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_graph_rejected() {
        let d = Deployment::from_points(Region::square(1.0), vec![]);
        let g = UnitDiskGraph::build(&d, 1.0);
        let _ = render_ascii(&g, None, 10);
    }

    #[test]
    fn base_station_beats_collisions() {
        // Two nodes on the same cell: the bs glyph must win.
        let d = Deployment::from_points(
            Region::square(10.0),
            vec![Point::new(5.0, 5.0), Point::new(5.01, 5.0)],
        );
        let g = UnitDiskGraph::build(&d, 2.0);
        let art = render_ascii(&g, None, 8);
        assert!(art.contains('B'));
    }
}
