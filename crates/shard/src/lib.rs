//! Conservative spatially-sharded parallel SIR plane for the ADDC
//! simulator.
//!
//! The sequential engine in `crn-sim` consumes one seeded RNG in global
//! event order, so its *control* plane (backoff clocks, MAC phases,
//! capture locks, packet queues, faults) cannot be partitioned without
//! changing the random stream. What can be partitioned — and what
//! dominates the per-event cost at 100k+ nodes — is the SIR *data*
//! plane: replaying reverse-CSR interference rows into per-receiver-slot
//! accumulators and re-verdicting the receptions chained there.
//!
//! This crate implements [`crn_sim::SirPlane`] as a set of spatial
//! shards. Receiver slots are assigned to shards by partitioning the
//! occupied cells of a [`crn_geometry::GridIndex`] whose cell size is at
//! least the certified Lemma-2 interference cutoff
//! ([`crn_interference::conservative_lookahead`] over the world's
//! per-slot truncation cutoffs). Because every reverse row reaches at
//! most that far, a transmitter's row only ever touches its own cell's
//! shard and the ring of neighboring cells — the exact per-transmitter
//! routing masks computed at build time stay small, and most events are
//! delivered to a single shard.
//!
//! Each shard applies the *same* per-slot floating-point operations, in
//! the *same* order, as the sequential delta path (per-slot streams are
//! totally ordered by the global event order, and each slot is owned by
//! exactly one shard), so the resulting [`crn_sim::SimReport`]s are
//! **bit-identical** to sequential runs — for any shard count, threaded
//! or inline. The equivalence suites in `tests/` and
//! `crn-sim/tests/engine_equiv.rs` pin this down.
//!
//! Synchronization is conservative and windowed: within one MAC slot
//! (`MacConfig::slot`, the engine's natural lookahead), events are
//! fire-and-forget; the control thread blocks only when a naturally
//! finishing transmission needs its sticky SIR verdict (drains just the
//! owner shard) and at window commits (drains all shards).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use crn_geometry::{Point, Region};
//! use crn_sim::{InterferenceModel, MacConfig, Simulator, SimWorld};
//! use crn_shard::{build_plane, ShardConfig, ShardMode};
//!
//! let world = Arc::new(
//!     SimWorld::builder(Region::square(30.0))
//!         .su_positions(vec![
//!             Point::new(5.0, 5.0),
//!             Point::new(12.0, 5.0),
//!             Point::new(19.0, 5.0),
//!         ])
//!         .parents(vec![None, Some(0), Some(1)])
//!         .sense_range(25.0)
//!         .interference(InterferenceModel::Truncated { epsilon: 1e-3 })
//!         .build()
//!         .unwrap(),
//! );
//! let mac = MacConfig::default();
//! let cfg = ShardConfig { mode: ShardMode::Fixed(2), ..ShardConfig::default() };
//! let plane = build_plane(&world, &mac, &cfg).expect("truncated world shards");
//! let report = Simulator::builder(Arc::clone(&world))
//!     .mac(mac)
//!     .seed(7)
//!     .sir_plane(plane)
//!     .build()
//!     .unwrap()
//!     .run();
//! // Bit-identical to the sequential run of the same (world, seed).
//! let sequential = Simulator::builder(world).seed(7).build().unwrap().run();
//! assert_eq!(format!("{report:?}"), format!("{sequential:?}"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod partition;
mod plane;
mod state;
mod telemetry;

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crn_sim::{MacConfig, SimWorld, SirPlane};

pub use partition::{Partition, MAX_SHARDS};
pub use plane::ShardedPlane;
pub use telemetry::{ShardStats, ShardTelemetry};

/// How many shards to run the SIR plane across.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ShardMode {
    /// No external plane: the engine's built-in sequential delta path.
    #[default]
    Sequential,
    /// One shard per available core (sequential when fewer than two).
    Auto,
    /// Exactly this many shards (clamped to `1..=`[`MAX_SHARDS`]). Unlike
    /// `Auto` this builds a plane even on a single-core host — the
    /// determinism suites rely on that to exercise sharded execution
    /// anywhere.
    Fixed(u32),
}

impl fmt::Display for ShardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMode::Sequential => f.write_str("sequential"),
            ShardMode::Auto => f.write_str("auto"),
            ShardMode::Fixed(n) => write!(f, "{n}"),
        }
    }
}

impl FromStr for ShardMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sequential" | "seq" => Ok(ShardMode::Sequential),
            "auto" => Ok(ShardMode::Auto),
            _ => match s.parse::<u32>() {
                Ok(0) => Ok(ShardMode::Sequential),
                Ok(n) => Ok(ShardMode::Fixed(n)),
                Err(_) => Err(format!(
                    "invalid shard mode {s:?} (expected `sequential`, `auto`, or a count)"
                )),
            },
        }
    }
}

/// Configuration for [`build_plane`].
#[derive(Clone, Debug, Default)]
pub struct ShardConfig {
    /// Shard count policy. Defaults to [`ShardMode::Sequential`].
    pub mode: ShardMode,
    /// Force worker threads on (`Some(true)`) or off (`Some(false)`,
    /// inline execution on the control thread). `None` picks threads
    /// when the host has more than one core. Reports are bit-identical
    /// either way; `Some(true)` lets single-core CI still exercise the
    /// cross-thread machinery.
    pub threaded: Option<bool>,
    /// Optional shared sink for pool counters (windows committed,
    /// boundary events mirrored, max window skew). Kept out of
    /// [`crn_sim::SimReport`] on purpose: skew is timing-dependent in
    /// threaded mode, and reports must stay bit-identical.
    pub telemetry: Option<Arc<ShardTelemetry>>,
}

impl ShardConfig {
    /// A config with the given mode and everything else defaulted.
    #[must_use]
    pub fn with_mode(mode: ShardMode) -> Self {
        ShardConfig {
            mode,
            ..ShardConfig::default()
        }
    }
}

/// Builds a sharded SIR plane for `world`, or `None` when the run should
/// stay on the engine's sequential path: [`ShardMode::Sequential`],
/// [`ShardMode::Auto`] on a single-core host, or a world without the
/// sparse reverse index (exact-mode interference has unbounded rows, so
/// there is no spatial cutoff to shard on).
///
/// Attach the result via [`crn_sim::SimulatorBuilder::sir_plane`],
/// passing the *same* `Arc<SimWorld>` to both.
#[must_use]
pub fn build_plane(
    world: &Arc<SimWorld>,
    mac: &MacConfig,
    cfg: &ShardConfig,
) -> Option<Box<dyn SirPlane>> {
    let cores = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    let requested = match cfg.mode {
        ShardMode::Sequential => return None,
        ShardMode::Auto => {
            let n = cores();
            if n < 2 {
                return None;
            }
            u32::try_from(n).unwrap_or(u32::MAX)
        }
        ShardMode::Fixed(k) => k.max(1),
    };
    if !world.has_reverse_index() {
        return None;
    }
    let threaded = cfg.threaded.unwrap_or_else(|| cores() >= 2);
    Some(Box::new(ShardedPlane::new(
        Arc::clone(world),
        mac,
        requested,
        threaded,
        cfg.telemetry.clone(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_mode_parses_and_displays() {
        assert_eq!("sequential".parse::<ShardMode>(), Ok(ShardMode::Sequential));
        assert_eq!("seq".parse::<ShardMode>(), Ok(ShardMode::Sequential));
        assert_eq!("0".parse::<ShardMode>(), Ok(ShardMode::Sequential));
        assert_eq!("auto".parse::<ShardMode>(), Ok(ShardMode::Auto));
        assert_eq!("4".parse::<ShardMode>(), Ok(ShardMode::Fixed(4)));
        assert!("four".parse::<ShardMode>().is_err());
        assert!("-1".parse::<ShardMode>().is_err());
        for mode in [ShardMode::Sequential, ShardMode::Auto, ShardMode::Fixed(7)] {
            assert_eq!(mode.to_string().parse::<ShardMode>(), Ok(mode));
        }
    }
}
