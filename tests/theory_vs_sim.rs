//! Numeric validation of the paper's analysis (Lemmas 5–8, Theorems 1–2)
//! against simulated runs — the integration-level counterpart of the
//! `validate-bounds` harness.

use crn::core::{CollectionAlgorithm, Scenario, ScenarioParams};
use crn::theory::{self, DelayBounds};

fn bounds_for(scenario: &Scenario, p_t: f64) -> DelayBounds {
    let p = scenario.params();
    let tree = scenario.tree(CollectionAlgorithm::Addc).unwrap();
    let c0 = p.area_side * p.area_side / p.num_sus as f64;
    DelayBounds::compute(
        &p.phy,
        p.pcr_constants,
        p.pu_density(),
        p_t,
        p.num_sus,
        c0,
        tree.max_degree(),
        tree.root_degree(),
    )
}

#[test]
fn theorem_bounds_hold_across_seeds() {
    for seed in 0..4 {
        let params = ScenarioParams::builder()
            .num_sus(100)
            .num_pus(10)
            .area_side(58.0)
            .p_t(0.3)
            .seed(seed)
            .max_connectivity_attempts(2000)
            .build();
        let scenario = Scenario::generate(&params).unwrap();
        let bounds = bounds_for(&scenario, 0.3);
        let o = scenario.run(CollectionAlgorithm::Addc).unwrap();
        assert!(o.report.finished, "seed {seed}");

        let service_slots = o.report.max_service_time / params.mac.slot;
        assert!(
            service_slots <= bounds.theorem1_service_slots,
            "seed {seed}: Theorem 1 violated: {service_slots} > {}",
            bounds.theorem1_service_slots
        );
        assert!(
            o.report.delay_slots <= bounds.theorem2_delay_slots,
            "seed {seed}: Theorem 2 violated: {} > {}",
            o.report.delay_slots,
            bounds.theorem2_delay_slots
        );
        assert!(
            o.report.capacity_fraction() >= bounds.capacity_fraction_lower,
            "seed {seed}: capacity bound violated"
        );
    }
}

#[test]
fn lemma5_and_lemma6_bound_observed_pcr_populations() {
    let params = ScenarioParams::builder()
        .num_sus(150)
        .num_pus(10)
        .area_side(70.0)
        .seed(11)
        .max_connectivity_attempts(2000)
        .build();
    let scenario = Scenario::generate(&params).unwrap();
    let tree = scenario.tree(CollectionAlgorithm::Addc).unwrap();
    let graph = scenario.graph();
    let kappa = scenario.pcr() / params.phy.su_radius();

    let lemma5 = theory::lemma5_cds_nodes_in_pcr(kappa);
    let lemma6 = theory::lemma6_sus_in_pcr(kappa, tree.max_degree());
    for u in 0..graph.len() as u32 {
        let center = graph.position(u);
        let mut cds_count = 0.0;
        let mut su_count = 0.0;
        for v in 0..graph.len() as u32 {
            if graph.position(v).within(center, scenario.pcr()) {
                su_count += 1.0;
                if let Some(crn::topology::Role::Dominator | crn::topology::Role::Connector) =
                    tree.role(v)
                {
                    cds_count += 1.0;
                }
            }
        }
        assert!(
            cds_count <= lemma5,
            "node {u}: {cds_count} CDS nodes > {lemma5}"
        );
        assert!(su_count <= lemma6, "node {u}: {su_count} SUs > {lemma6}");
    }
}

#[test]
fn observed_tree_degree_within_lemma6_whp_bound() {
    // The w.h.p. bound on Δ itself — check it on several instances.
    for seed in 0..5 {
        let params = ScenarioParams::builder()
            .num_sus(200)
            .num_pus(5)
            .area_side(80.0)
            .seed(seed)
            .max_connectivity_attempts(2000)
            .build();
        let scenario = Scenario::generate(&params).unwrap();
        let tree = scenario.tree(CollectionAlgorithm::Addc).unwrap();
        let c0 = params.area_side * params.area_side / params.num_sus as f64;
        let bound = theory::lemma6_delta_bound(params.num_sus, params.phy.su_radius(), c0);
        assert!(
            (tree.max_degree() as f64) <= bound,
            "seed {seed}: Δ = {} exceeds the w.h.p. bound {bound:.1}",
            tree.max_degree()
        );
    }
}

#[test]
fn analytic_p_o_tracks_empirical_waits_in_order_of_magnitude() {
    // The expected per-hop service (from Lemma 7's p_o) and the simulated
    // mean service should stay within one order of magnitude.
    let params = ScenarioParams::builder()
        .num_sus(120)
        .num_pus(14)
        .area_side(65.0)
        .p_t(0.3)
        .seed(21)
        .max_connectivity_attempts(2000)
        .build();
    let scenario = Scenario::generate(&params).unwrap();
    let bounds = bounds_for(&scenario, 0.3);
    let o = scenario.run(CollectionAlgorithm::Addc).unwrap();
    let mean_service_slots = o.report.mean_service_time / params.mac.slot;
    let analytic_wait = 1.0 / bounds.p_o;
    let ratio = mean_service_slots / analytic_wait;
    assert!(
        (0.1..=100.0).contains(&ratio),
        "service {mean_service_slots:.1} slots vs analytic wait {analytic_wait:.1}: ratio {ratio}"
    );
}
