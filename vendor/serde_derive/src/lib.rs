//! Derive macros for the vendored serde stand-in.
//!
//! These derives parse just enough of the item — the `struct`/`enum`
//! keyword, the type name, and an optional generic parameter list — to emit
//! an empty marker-trait implementation. No syn/quote dependency, so the
//! whole workspace builds offline.

use proc_macro::{TokenStream, TokenTree};

/// Walk the item's tokens and return `(name, generic_params)` where
/// `generic_params` is the comma-joined list of generic parameter names
/// (lifetimes and type parameters, bounds stripped).
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`), visibility, and anything else until the
    // `struct`/`enum` keyword.
    loop {
        match tokens.next()? {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = match tokens.next()? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            // Collect parameter names: the first ident (or `'lt`) of each
            // comma-separated segment, skipping bounds after `:` and
            // defaults after `=`. Nested angle brackets (e.g.
            // `T: Into<String>`) are tracked by depth.
            let mut depth = 1usize;
            let mut expecting_param = true;
            let mut skipping = false;
            let mut lifetime_pending = false;
            while depth > 0 {
                match tokens.next()? {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 1 => {
                            expecting_param = true;
                            skipping = false;
                        }
                        ':' | '=' if depth == 1 => skipping = true,
                        '\'' if expecting_param && !skipping => lifetime_pending = true,
                        _ => {}
                    },
                    TokenTree::Ident(id) if expecting_param && !skipping => {
                        let name = if lifetime_pending {
                            format!("'{id}")
                        } else {
                            id.to_string()
                        };
                        generics.push(name);
                        expecting_param = false;
                        lifetime_pending = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, generics))
}

fn impl_for(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    params.extend(generics.iter().cloned());
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    let code = format!(
        "#[automatically_derived] impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}"
    );
    code.parse().unwrap_or_default()
}

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for(input, "::serde::Serialize", None)
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for(input, "::serde::Deserialize<'de>", Some("'de"))
}
