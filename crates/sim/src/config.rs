use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How [`crate::SimWorld`] materializes path gains for cumulative-SIR
/// accounting.
///
/// `Exact` keeps the dense per-(transmitter, receiver) gain tables —
/// bit-for-bit the original semantics, O(n²) memory. `Truncated` builds
/// sparse near-field lists certified by the Lemma-2 far-field tail bound
/// ([`crn_interference::cutoff`]): every gain beyond a per-receiver cutoff
/// radius is dropped, and the analytic worst case of everything dropped is
/// below `epsilon` of that receiver's weakest-link SIR decision margin.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum InterferenceModel {
    /// Dense gain tables; every concurrent transmitter contributes to
    /// every receiver (the paper's literal cumulative model).
    #[default]
    Exact,
    /// Sparse near-field lists with a certified far-field truncation.
    Truncated {
        /// Fraction of the SIR decision margin the truncated far field is
        /// allowed to occupy, in `(0, 1)`. The paper-default margins and
        /// `epsilon = 0.1` leave every decision numerically unchanged in
        /// practice (asserted by equivalence tests).
        epsilon: f64,
    },
}

impl InterferenceModel {
    /// The truncation budget fraction, if any.
    #[must_use]
    pub fn epsilon(&self) -> Option<f64> {
        match *self {
            InterferenceModel::Exact => None,
            InterferenceModel::Truncated { epsilon } => Some(epsilon),
        }
    }
}

impl fmt::Display for InterferenceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InterferenceModel::Exact => f.write_str("exact"),
            InterferenceModel::Truncated { epsilon } => write!(f, "truncated:{epsilon}"),
        }
    }
}

impl FromStr for InterferenceModel {
    type Err = String;

    /// Parses `"exact"` or `"truncated:EPS"` (e.g. `truncated:0.1`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("exact") {
            return Ok(InterferenceModel::Exact);
        }
        if let Some(eps) = s.strip_prefix("truncated:") {
            let epsilon: f64 = eps
                .parse()
                .map_err(|_| format!("bad truncation epsilon {eps:?}"))?;
            return Ok(InterferenceModel::Truncated { epsilon });
        }
        Err(format!(
            "unknown interference model {s:?} (expected exact or truncated:EPS)"
        ))
    }
}

/// MAC-layer and run-control knobs of the simulated Algorithm 1.
///
/// Defaults mirror the paper's Section V settings: 1 ms slots, a 0.5 ms
/// contention window, SIR-checked reception with RS capture, and a
/// 1 000 000-slot safety cap.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MacConfig {
    /// Slot duration `τ` in seconds (the PU activity granularity).
    pub slot: f64,
    /// Contention window `τ_c` in seconds (must be `< slot`).
    pub contention_window: f64,
    /// Packet airtime in seconds. The paper states "the propagation time
    /// of a data packet ... is less than 1 ms" (one slot); the default is
    /// half a slot, so packets that start early enough in a PU-free slot
    /// complete without crossing a boundary — matching the `τ/p_o`
    /// waiting-time analysis of Lemma 7. Setting it equal to `slot` makes
    /// every transmission span a boundary and face preemption.
    pub airtime: f64,
    /// Hard wall on simulated time, in seconds. A run that exceeds it
    /// reports `finished = false`.
    pub max_sim_time: f64,
    /// Whether receivers enforce the cumulative SIR threshold. Disabling
    /// turns the run into a pure protocol/collision simulation (used by
    /// ablations).
    pub check_sir: bool,
    /// Whether the fairness wait of Algorithm 1 line 12 (`τ_c − t_i`) is
    /// applied after each transmission (the `ablation_fairness` bench
    /// turns it off).
    pub fairness_wait: bool,
    /// Binary exponential backoff on **collision** failures (SIR
    /// violations and capture losses): each consecutive collision doubles
    /// the node's contention window up to 2⁶·τ_c; success resets it.
    /// PU handoffs do not trigger it (they signal spectrum loss, not
    /// congestion). This is the paper's footnote-2 collision resolution;
    /// without it, under-sensed CSMA (the Coolest baseline) can livelock.
    pub collision_backoff: bool,
}

/// Largest collision-backoff exponent (window cap `2⁶·τ_c`).
pub(crate) const MAX_BACKOFF_EXP: u32 = 6;

/// When secondary users produce data.
///
/// The paper's headline task is a single **snapshot**: every SU produces
/// one packet at `t = 0`. [`Traffic::Periodic`] extends this to the
/// *continuous data collection* setting of the authors' companion work
/// (repeated snapshots at a fixed interval), which is how the achievable
/// data collection **capacity** is exercised in steady state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum Traffic {
    /// One packet per SU at `t = 0` (the paper's data collection task).
    #[default]
    Snapshot,
    /// `snapshots` rounds, one packet per SU at `t = k · interval`.
    Periodic {
        /// Seconds between snapshot generations.
        interval: f64,
        /// Number of snapshots (≥ 1).
        snapshots: u32,
    },
}

impl Traffic {
    /// Number of snapshot rounds.
    #[must_use]
    pub fn snapshots(&self) -> u32 {
        match *self {
            Traffic::Snapshot => 1,
            Traffic::Periodic { snapshots, .. } => snapshots,
        }
    }

    /// Validates the traffic model, returning a typed error for a
    /// non-positive/non-finite periodic interval or a zero snapshot count.
    ///
    /// # Errors
    ///
    /// [`BuildError::BadInterval`] or [`BuildError::NoSnapshots`].
    pub fn validated(&self) -> Result<(), BuildError> {
        if let Traffic::Periodic {
            interval,
            snapshots,
        } = *self
        {
            if !(interval > 0.0 && interval.is_finite()) {
                return Err(BuildError::BadInterval { interval });
            }
            if snapshots < 1 {
                return Err(BuildError::NoSnapshots);
            }
        }
        Ok(())
    }

    /// Validates the traffic model.
    ///
    /// # Panics
    ///
    /// Panics if a periodic interval is not strictly positive or the
    /// snapshot count is zero. Prefer [`Traffic::validated`] for a typed
    /// error.
    pub fn validate(&self) {
        if let Err(e) = self.validated() {
            panic!("{e}");
        }
    }
}

/// Why [`crate::SimulatorBuilder::build`] rejected a configuration.
///
/// Every variant corresponds to a timing parameter that would otherwise
/// surface as a panic deep inside the event queue mid-run (non-finite
/// event times fail `EventQueue::push`'s assertion); validating at build
/// time turns those into a typed, matchable error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BuildError {
    /// The slot length is not strictly positive and finite.
    BadSlot {
        /// Offending slot length in seconds.
        slot: f64,
    },
    /// The contention window does not lie in `(0, slot)` or is non-finite.
    BadContentionWindow {
        /// Offending contention window in seconds.
        contention_window: f64,
        /// The configured slot length in seconds.
        slot: f64,
    },
    /// The airtime does not lie in `(0, slot]` or is non-finite.
    BadAirtime {
        /// Offending airtime in seconds.
        airtime: f64,
        /// The configured slot length in seconds.
        slot: f64,
    },
    /// `max_sim_time` is not strictly positive and finite.
    BadMaxSimTime {
        /// Offending time cap in seconds.
        max_sim_time: f64,
    },
    /// A periodic traffic interval is not strictly positive and finite.
    BadInterval {
        /// Offending interval in seconds.
        interval: f64,
    },
    /// Periodic traffic was configured with zero snapshots.
    NoSnapshots,
    /// The fault schedule targets a node id outside the simulated world.
    BadFaultTarget {
        /// Largest node id mentioned by the schedule.
        target: u32,
        /// Number of nodes in the world (ids are `0..nodes`).
        nodes: usize,
    },
    /// An external SIR plane was attached but the world carries no
    /// reverse index for it to replay (dense/exact interference mode),
    /// or the full-scan reference path was forced at the same time.
    PlaneNeedsReverseIndex,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BuildError::BadSlot { slot } => {
                write!(f, "slot must be positive, got {slot}")
            }
            BuildError::BadContentionWindow {
                contention_window,
                slot,
            } => write!(
                f,
                "contention window must lie in (0, slot), got {contention_window} (slot {slot})"
            ),
            BuildError::BadAirtime { airtime, slot } => {
                write!(
                    f,
                    "airtime must lie in (0, slot], got {airtime} (slot {slot})"
                )
            }
            BuildError::BadMaxSimTime { max_sim_time } => {
                write!(f, "max_sim_time must be positive, got {max_sim_time}")
            }
            BuildError::BadInterval { interval } => {
                write!(f, "periodic interval must be positive, got {interval}")
            }
            BuildError::NoSnapshots => f.write_str("at least one snapshot required"),
            BuildError::BadFaultTarget { target, nodes } => write!(
                f,
                "fault schedule targets node {target}, but the world has only {nodes} nodes"
            ),
            BuildError::PlaneNeedsReverseIndex => f.write_str(
                "an external SIR plane needs the sparse reverse index (truncated mode, full_scan off)",
            ),
        }
    }
}

impl std::error::Error for BuildError {}

impl Default for MacConfig {
    fn default() -> Self {
        Self {
            slot: 1e-3,
            contention_window: 0.5e-3,
            airtime: 0.5e-3,
            max_sim_time: 1e-3 * 1_000_000.0,
            check_sir: true,
            fairness_wait: true,
            collision_backoff: true,
        }
    }
}

impl MacConfig {
    /// Validates internal consistency, returning a typed error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the first applicable [`BuildError`] if the slot, contention
    /// window, airtime, or time cap is non-finite, non-positive, or out of
    /// range (`contention_window ∈ (0, slot)`, `airtime ∈ (0, slot]`).
    pub fn validated(&self) -> Result<(), BuildError> {
        if !(self.slot > 0.0 && self.slot.is_finite()) {
            return Err(BuildError::BadSlot { slot: self.slot });
        }
        if !(self.contention_window > 0.0 && self.contention_window < self.slot) {
            return Err(BuildError::BadContentionWindow {
                contention_window: self.contention_window,
                slot: self.slot,
            });
        }
        if !(self.airtime > 0.0 && self.airtime <= self.slot) {
            return Err(BuildError::BadAirtime {
                airtime: self.airtime,
                slot: self.slot,
            });
        }
        if !(self.max_sim_time > 0.0 && self.max_sim_time.is_finite()) {
            return Err(BuildError::BadMaxSimTime {
                max_sim_time: self.max_sim_time,
            });
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the slot or contention window is not strictly positive,
    /// if `contention_window ≥ slot`, or if `max_sim_time` is not
    /// positive and finite. Prefer [`MacConfig::validated`] for a typed
    /// error.
    pub fn validate(&self) {
        if let Err(e) = self.validated() {
            panic!("{e}");
        }
    }

    /// Convenience: the safety cap expressed in slots.
    #[must_use]
    pub fn max_slots(&self) -> f64 {
        self.max_sim_time / self.slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MacConfig::default();
        assert_eq!(c.slot, 1e-3);
        assert_eq!(c.contention_window, 0.5e-3);
        assert_eq!(c.airtime, 0.5e-3);
        assert!(c.check_sir);
        assert!(c.fairness_wait);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "airtime")]
    fn airtime_above_slot_rejected() {
        let c = MacConfig {
            airtime: 2e-3,
            ..MacConfig::default()
        };
        c.validate();
    }

    #[test]
    fn max_slots_is_time_over_slot() {
        let c = MacConfig::default();
        assert!((c.max_slots() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "contention window")]
    fn contention_window_must_fit_in_slot() {
        let c = MacConfig {
            contention_window: 2e-3,
            ..MacConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "slot must be positive")]
    fn zero_slot_rejected() {
        let c = MacConfig {
            slot: 0.0,
            ..MacConfig::default()
        };
        c.validate();
    }

    #[test]
    fn validated_returns_typed_errors() {
        let defaults = MacConfig::default();
        assert_eq!(defaults.validated(), Ok(()));
        let nan_slot = MacConfig {
            slot: f64::NAN,
            ..defaults
        };
        assert!(matches!(
            nan_slot.validated(),
            Err(BuildError::BadSlot { .. })
        ));
        let inf_cap = MacConfig {
            max_sim_time: f64::INFINITY,
            ..defaults
        };
        assert_eq!(
            inf_cap.validated(),
            Err(BuildError::BadMaxSimTime {
                max_sim_time: f64::INFINITY
            })
        );
        let wide_cw = MacConfig {
            contention_window: 2e-3,
            ..defaults
        };
        assert!(wide_cw
            .validated()
            .unwrap_err()
            .to_string()
            .contains("contention window"));
    }

    #[test]
    fn traffic_validated_returns_typed_errors() {
        assert_eq!(Traffic::Snapshot.validated(), Ok(()));
        let bad = Traffic::Periodic {
            interval: 0.0,
            snapshots: 3,
        };
        assert!(matches!(
            bad.validated(),
            Err(BuildError::BadInterval { .. })
        ));
        assert!(bad
            .validated()
            .unwrap_err()
            .to_string()
            .contains("interval"));
        let none = Traffic::Periodic {
            interval: 1e-3,
            snapshots: 0,
        };
        assert_eq!(none.validated(), Err(BuildError::NoSnapshots));
    }

    #[test]
    fn interference_model_defaults_to_exact() {
        assert_eq!(InterferenceModel::default(), InterferenceModel::Exact);
        assert_eq!(InterferenceModel::Exact.epsilon(), None);
        assert_eq!(
            InterferenceModel::Truncated { epsilon: 0.1 }.epsilon(),
            Some(0.1)
        );
    }

    #[test]
    fn interference_model_round_trips_through_strings() {
        for model in [
            InterferenceModel::Exact,
            InterferenceModel::Truncated { epsilon: 0.1 },
            InterferenceModel::Truncated { epsilon: 0.05 },
        ] {
            let s = model.to_string();
            assert_eq!(s.parse::<InterferenceModel>().unwrap(), model);
        }
        assert_eq!(
            "exact".parse::<InterferenceModel>().unwrap(),
            InterferenceModel::Exact
        );
        assert!("nearfield".parse::<InterferenceModel>().is_err());
        assert!("truncated:abc".parse::<InterferenceModel>().is_err());
    }
}
