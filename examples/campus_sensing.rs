//! A domain scenario: a campus-wide environmental sensing network of
//! battery-powered secondary users opportunistically sharing spectrum
//! with licensed campus systems (wireless microphones, public-safety
//! radios) that activate intermittently.
//!
//! The operator's question: *how should the sensing mesh route its hourly
//! snapshot to the gateway?* This example pits ADDC's CDS tree against
//! the Coolest-path baseline and a plain BFS tree on the same deployment,
//! and reports delay, per-flow fairness, and retransmission overhead.
//!
//! ```text
//! cargo run --release --example campus_sensing
//! ```

use crn::core::{CollectionAlgorithm, Scenario, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Campus quad: 300 sensors + gateway over 100x100 (same densities as
    // the paper), 32 licensed devices each active 30% of slots.
    let params = ScenarioParams::builder()
        .num_sus(300)
        .num_pus(32)
        .area_side(100.0)
        .p_t(0.3)
        .seed(2026)
        .max_connectivity_attempts(2000)
        .build();
    let scenario = Scenario::generate(&params)?;
    println!(
        "campus mesh: {} sensors, {} licensed devices, PCR {:.1} m\n",
        params.num_sus,
        params.num_pus,
        scenario.pcr()
    );
    println!(
        "| routing | delay (slots) | delay (s) | Jain fairness | attempts/packet | PU handoffs |"
    );
    println!("|---|---|---|---|---|---|");

    let mut best: Option<(CollectionAlgorithm, f64)> = None;
    for algo in [
        CollectionAlgorithm::Addc,
        CollectionAlgorithm::Coolest,
        CollectionAlgorithm::BfsTree,
    ] {
        let outcome = scenario.run(algo)?;
        let r = &outcome.report;
        assert!(r.finished, "{algo} did not finish — raise max_sim_time");
        println!(
            "| {algo} | {:.0} | {:.3} | {:.3} | {:.2} | {} |",
            r.delay_slots,
            r.delay,
            r.jain_fairness().unwrap_or(1.0),
            r.attempts as f64 / r.successes.max(1) as f64,
            r.pu_aborts,
        );
        if best.is_none() || r.delay < best.as_ref().expect("set").1 {
            best = Some((algo, r.delay));
        }
    }
    let (winner, delay) = best.expect("three runs");
    println!("\nfastest snapshot collection: {winner} at {delay:.3} s");
    Ok(())
}
