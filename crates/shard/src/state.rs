//! Per-shard SIR state: an owner-filtered replica of the sequential
//! engine's delta path.
//!
//! **Bit-identity contract.** Every arithmetic statement here mirrors,
//! operation for operation, the `SirPath::Delta` arms in
//! `crn-sim/src/engine.rs` (`begin_tx`, `finish_tx`, `set_pu_on`,
//! `set_pu_off`, `recheck_slot`) — if one side changes, the other must
//! change identically, and the paired-seed equivalence suites will
//! catch a drift. The *only* difference is the owner filter: a shard
//! skips row entries whose receiver slot it does not own. Because each
//! slot has exactly one owner and items are applied in the global event
//! order, the per-slot sequence of floating-point operations is
//! identical to the sequential engine's, hence so is every accumulator
//! bit and every sticky verdict.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crn_sim::SimWorld;

/// Sentinel for "no SU" in slot chains (mirrors the engine's).
pub(crate) const NO_SU: u32 = u32::MAX;

/// Per-receiver-slot accumulator (mirrors the engine's `SlotAcc`).
#[derive(Clone, Copy, Debug)]
struct SlotAcc {
    /// Running sum of all contributions (own terms included).
    intf: f64,
    /// Live contributor count; `intf` snaps to exactly 0.0 at zero.
    cnt: u32,
    /// Head of the intrusive chain of in-flight receptions.
    head: u32,
}

impl SlotAcc {
    const EMPTY: SlotAcc = SlotAcc {
        intf: 0.0,
        cnt: 0,
        head: NO_SU,
    };
}

/// One mirrored engine call, routed to every shard in the
/// transmitter's mask.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Item {
    /// Mirrors `SirPlane::tx_start`.
    TxStart { su: u32, rx_slot: u32, signal: f64 },
    /// Mirrors `SirPlane::tx_finish` (the verdict is read from the
    /// shared board after draining the owner, not returned here).
    TxFinish { su: u32, rx_slot: u32 },
    /// Mirrors `SirPlane::pu_on`.
    PuOn { pu: u32 },
    /// Mirrors `SirPlane::pu_off`.
    PuOff { pu: u32 },
}

/// The mutable SIR state of one shard. Arrays are full-length (indexed
/// by global slot/SU ids) but each entry is touched only by its owner
/// shard — except the `failed` board, which the control thread reads
/// after draining the owner.
#[derive(Debug)]
pub(crate) struct ShardSirState {
    shard: u16,
    world: Arc<SimWorld>,
    /// Slot → owning shard (shared, immutable).
    owners: Arc<Vec<u16>>,
    check_sir: bool,
    p_s: f64,
    eta: f64,
    slot: Vec<SlotAcc>,
    /// Clamped self-jamming term per slot, outside the accumulator.
    slot_self: Vec<f64>,
    /// Intrusive chain links per SU.
    next_at_slot: Vec<u32>,
    /// Own (undegraded) contribution at the SU's receiver, valid while
    /// chained.
    own: Vec<f64>,
    /// Degraded intended-link signal, valid while chained.
    signal: Vec<f64>,
    /// Sticky per-SU `failed_sir` bits, shared with the control thread.
    /// Relaxed is enough: cross-thread ordering rides on the worker's
    /// processed counter (Release on bump, Acquire on drain).
    failed: Arc<Vec<AtomicBool>>,
}

impl ShardSirState {
    pub(crate) fn new(
        shard: u16,
        world: Arc<SimWorld>,
        owners: Arc<Vec<u16>>,
        check_sir: bool,
        failed: Arc<Vec<AtomicBool>>,
    ) -> ShardSirState {
        let slots = world.num_receiver_slots();
        let sus = world.num_sus();
        let p_s = world.phy().su_power();
        let eta = world.phy().su_sir_threshold();
        ShardSirState {
            shard,
            world,
            owners,
            check_sir,
            p_s,
            eta,
            slot: vec![SlotAcc::EMPTY; slots],
            slot_self: vec![0.0; slots],
            next_at_slot: vec![NO_SU; sus],
            own: vec![0.0; sus],
            signal: vec![0.0; sus],
            failed,
        }
    }

    pub(crate) fn apply(&mut self, item: Item) {
        match item {
            Item::TxStart {
                su,
                rx_slot,
                signal,
            } => self.tx_start(su, rx_slot, signal),
            Item::TxFinish { su, rx_slot } => self.tx_finish(su, rx_slot),
            Item::PuOn { pu } => self.pu_on(pu),
            Item::PuOff { pu } => self.pu_off(pu),
        }
    }

    /// Mirrors `begin_tx`'s delta arm: accumulate the reverse row into
    /// owned slots (re-verdicting on increase), then — iff this shard
    /// owns the receiver — compute the initial verdict from the fully
    /// updated accumulator and join the slot's chain. The chain join
    /// happens *after* the row walk, so the walk's re-checks never see
    /// the new reception (same ordering as the engine).
    fn tx_start(&mut self, su: u32, rx_slot: u32, signal: f64) {
        let world = Arc::clone(&self.world);
        let my_slot = world.receiver_slot(su).unwrap_or(NO_SU);
        let (slots, gains) = world
            .who_hears_su(su)
            .expect("sharded plane requires the reverse index");
        let mut own = 0.0;
        for (&s, &g) in slots.iter().zip(gains) {
            if self.owners[s as usize] != self.shard {
                continue;
            }
            if s == my_slot {
                self.slot_self[s as usize] = self.p_s * g;
                if self.slot[s as usize].head != NO_SU {
                    self.recheck_slot(s);
                }
                continue;
            }
            let acc = &mut self.slot[s as usize];
            acc.intf += self.p_s * g;
            acc.cnt += 1;
            if s == rx_slot {
                own = self.p_s * g;
            }
            if acc.head != NO_SU {
                self.recheck_slot(s);
            }
        }

        if self.owners[rx_slot as usize] == self.shard {
            let acc = &self.slot[rx_slot as usize];
            let cnt = acc.cnt;
            debug_assert!(cnt >= 1, "own contribution missing from slot");
            let rest = if cnt <= 1 {
                0.0
            } else {
                (acc.intf - own).max(0.0)
            };
            let interference = rest + self.slot_self[rx_slot as usize];
            let failed = self.check_sir && interference > 0.0 && signal < self.eta * interference;
            self.failed[su as usize].store(failed, Ordering::Relaxed);
            self.own[su as usize] = own;
            self.signal[su as usize] = signal;
            let head = &mut self.slot[rx_slot as usize].head;
            self.next_at_slot[su as usize] = *head;
            *head = su;
        }
    }

    /// Mirrors `finish_tx`'s delta arm: unchain at the receiver (owner
    /// only), then withdraw the row from owned slots with the same
    /// snap-to-zero rule. Decreases never re-check.
    fn tx_finish(&mut self, su: u32, rx_slot: u32) {
        if self.owners[rx_slot as usize] == self.shard {
            let slot = rx_slot as usize;
            let mut cur = self.slot[slot].head;
            if cur == su {
                self.slot[slot].head = self.next_at_slot[su as usize];
            } else {
                while self.next_at_slot[cur as usize] != su {
                    cur = self.next_at_slot[cur as usize];
                    debug_assert_ne!(cur, NO_SU, "active tx missing from slot chain");
                }
                self.next_at_slot[cur as usize] = self.next_at_slot[su as usize];
            }
            self.next_at_slot[su as usize] = NO_SU;
        }

        let world = Arc::clone(&self.world);
        let my_slot = world.receiver_slot(su).unwrap_or(NO_SU);
        let (slots, gains) = world
            .who_hears_su(su)
            .expect("sharded plane requires the reverse index");
        for (&s, &g) in slots.iter().zip(gains) {
            if self.owners[s as usize] != self.shard {
                continue;
            }
            if s == my_slot {
                self.slot_self[s as usize] = 0.0;
                continue;
            }
            let acc = &mut self.slot[s as usize];
            debug_assert!(acc.cnt > 0, "slot contributor underflow");
            acc.cnt -= 1;
            acc.intf = if acc.cnt == 0 {
                0.0
            } else {
                (acc.intf - self.p_s * g).max(0.0)
            };
        }
    }

    /// Mirrors `set_pu_on`'s delta arm over owned slots.
    fn pu_on(&mut self, pu: u32) {
        let world = Arc::clone(&self.world);
        let p_p = world.phy().pu_power();
        let (slots, gains) = world
            .who_hears_pu(pu as usize)
            .expect("sharded plane requires the reverse index");
        for (&s, &g) in slots.iter().zip(gains) {
            if self.owners[s as usize] != self.shard {
                continue;
            }
            let acc = &mut self.slot[s as usize];
            acc.intf += p_p * g;
            acc.cnt += 1;
            if acc.head != NO_SU {
                self.recheck_slot(s);
            }
        }
    }

    /// Mirrors `set_pu_off`'s delta arm over owned slots.
    fn pu_off(&mut self, pu: u32) {
        let world = Arc::clone(&self.world);
        let p_p = world.phy().pu_power();
        let (slots, gains) = world
            .who_hears_pu(pu as usize)
            .expect("sharded plane requires the reverse index");
        for (&s, &g) in slots.iter().zip(gains) {
            if self.owners[s as usize] != self.shard {
                continue;
            }
            let acc = &mut self.slot[s as usize];
            debug_assert!(acc.cnt > 0, "slot contributor underflow");
            acc.cnt -= 1;
            acc.intf = if acc.cnt == 0 {
                0.0
            } else {
                (acc.intf - p_p * g).max(0.0)
            };
        }
    }

    /// Mirrors the engine's `recheck_slot`: re-verdict the receptions
    /// chained at an owned slot after its accumulator increased. Sticky:
    /// a set bit is never cleared until the SU's next `tx_start`.
    fn recheck_slot(&mut self, slot: u32) {
        if !self.check_sir {
            return;
        }
        let acc = self.slot[slot as usize];
        let total = acc.intf;
        let cnt = acc.cnt;
        let self_term = self.slot_self[slot as usize];
        let mut cur = acc.head;
        while cur != NO_SU {
            if !self.failed[cur as usize].load(Ordering::Relaxed) {
                let rest = if cnt <= 1 {
                    0.0
                } else {
                    (total - self.own[cur as usize]).max(0.0)
                };
                let intf = rest + self_term;
                if intf > 0.0 && self.signal[cur as usize] < self.eta * intf {
                    self.failed[cur as usize].store(true, Ordering::Relaxed);
                }
            }
            cur = self.next_at_slot[cur as usize];
        }
    }
}
