//! A cluster worker: dials the coordinator, joins, and executes the
//! `work` messages pushed down the same connection.
//!
//! The worker runs specs through the shared [`Executor`] — the exact
//! code path `crn-serve` uses — with its own two result tiers in front:
//! an in-memory LRU and (optionally) a persistent
//! [`ResultStore`]. Because the coordinator
//! routes by content, the same key always lands here, so the local
//! tiers carry the fleet's share of the dedup work. Results travel back
//! as full-fidelity [`outcome_codec`](crn_serve::outcome_codec)
//! payloads: the coordinator re-serves them bit-identically.
//!
//! A worker's lifetime is its connection: when the coordinator hangs up
//! (or [`WorkerNode::kill`] shuts the socket, as the crash tests do),
//! the reader stops, the execution threads drain and exit, and any
//! still-running job's result is simply never delivered — the
//! coordinator's re-dispatch owns recovery from there.

use crn_core::CollectionOutcome;
use crn_serve::cache::LruCache;
use crn_serve::exec::Executor;
use crn_serve::protocol::{ClusterMsg, RunSpec};
use crn_serve::server::{read_bounded_line, LineRead, MAX_REQUEST_LINE_BYTES};
use crn_serve::store::{ResultStore, StoreConfig};
use crn_serve::sweep::write_json_line;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a worker is sized and where it joins.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Operator-visible name; also seeds the worker's ring arcs, so a
    /// restarted worker with the same name reclaims the same key range.
    pub name: String,
    /// Execution threads (min 1).
    pub threads: usize,
    /// In-memory result cache capacity in entries.
    pub cache_cap: usize,
    /// Topology-tier cache capacity in entries.
    pub topo_cache_cap: usize,
    /// Optional persistent result store (worker-local directory).
    pub store: Option<StoreConfig>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            coordinator: String::new(),
            name: "worker".into(),
            threads: 2,
            cache_cap: 1024,
            topo_cache_cap: 64,
            store: None,
        }
    }
}

struct WorkQueue {
    jobs: VecDeque<(u64, RunSpec)>,
    closed: bool,
}

struct WorkerShared {
    queue: Mutex<WorkQueue>,
    work_ready: Condvar,
    writer: Mutex<TcpStream>,
    exec: Executor,
    cache: Mutex<LruCache<u64, Arc<CollectionOutcome>>>,
    store: Option<Mutex<ResultStore>>,
}

/// A joined worker process half: reader thread + execution pool.
pub struct WorkerNode {
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    execs: Vec<JoinHandle<()>>,
}

impl WorkerNode {
    /// Connects, joins, and starts executing; returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates connect/handshake failures and store open failures.
    pub fn start(cfg: WorkerConfig) -> std::io::Result<WorkerNode> {
        let stream = TcpStream::connect(cfg.coordinator.as_str())?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        write_json_line(
            &mut writer,
            &ClusterMsg::Join {
                worker: cfg.name.clone(),
            }
            .encode(),
        )?;
        let store = match &cfg.store {
            None => None,
            Some(sc) => Some(Mutex::new(ResultStore::open(sc.clone())?)),
        };
        let shared = Arc::new(WorkerShared {
            queue: Mutex::new(WorkQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            work_ready: Condvar::new(),
            writer: Mutex::new(writer),
            exec: Executor::new(cfg.topo_cache_cap),
            cache: Mutex::new(LruCache::new(cfg.cache_cap)),
            store,
        });
        let reader = {
            let shared = shared.clone();
            let conn = stream.try_clone()?;
            std::thread::Builder::new()
                .name(format!("crn-worker-{}-reader", cfg.name))
                .spawn(move || reader_loop(conn, &shared))
                .expect("spawn worker reader")
        };
        let execs = (0..cfg.threads.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("crn-worker-{}-exec-{i}", cfg.name))
                    .spawn(move || exec_loop(&shared))
                    .expect("spawn worker exec thread")
            })
            .collect();
        Ok(WorkerNode {
            stream,
            reader: Some(reader),
            execs,
        })
    }

    /// Connects and blocks until the coordinator hangs up (the CLI
    /// `crn serve --join` body).
    ///
    /// # Errors
    ///
    /// Propagates [`WorkerNode::start`] failures.
    pub fn run(cfg: WorkerConfig) -> std::io::Result<()> {
        WorkerNode::start(cfg)?.wait();
        Ok(())
    }

    /// Hard-kills the worker's connection (crash injection for tests):
    /// the coordinator sees EOF and re-dispatches this worker's jobs.
    pub fn kill(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Blocks until the connection dies and every thread has exited.
    pub fn wait(mut self) {
        if let Some(r) = self.reader.take() {
            r.join().expect("worker reader panicked");
        }
        for h in self.execs.drain(..) {
            h.join().expect("worker exec thread panicked");
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<WorkerShared>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut discarding = false;
    loop {
        match read_bounded_line(
            &mut reader,
            &mut line,
            &mut discarding,
            MAX_REQUEST_LINE_BYTES,
        ) {
            LineRead::Idle => {}
            LineRead::Eof | LineRead::Closed | LineRead::TooLarge => break,
            LineRead::Line => {
                if let Ok(ClusterMsg::Work { id, spec }) = ClusterMsg::parse(line.trim()) {
                    let mut q = shared.queue.lock().expect("worker queue poisoned");
                    q.jobs.push_back((id, spec));
                    drop(q);
                    shared.work_ready.notify_one();
                }
                // Anything else on the worker channel is a protocol slip
                // by the coordinator; dropping it is the safe response.
                line.clear();
            }
        }
    }
    let mut q = shared.queue.lock().expect("worker queue poisoned");
    q.closed = true;
    drop(q);
    shared.work_ready.notify_all();
}

fn exec_loop(shared: &Arc<WorkerShared>) {
    loop {
        let (id, spec) = {
            let mut q = shared.queue.lock().expect("worker queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.closed {
                    return;
                }
                q = shared.work_ready.wait(q).expect("worker queue poisoned");
            }
        };
        let result = resolve(shared, &spec);
        let msg = ClusterMsg::Result { id, result }.encode();
        // A failed write means the coordinator is gone; the reader will
        // notice EOF and wind the worker down.
        let mut w = shared.writer.lock().expect("worker writer poisoned");
        let _ = write_json_line(&mut *w, &msg);
    }
}

/// Cache → store → execute, committing fresh results to both tiers.
fn resolve(
    shared: &Arc<WorkerShared>,
    spec: &RunSpec,
) -> Result<CollectionOutcome, (crn_serve::ErrorKind, String)> {
    let key = spec.cache_key();
    if !spec.inject_panic {
        let hit = shared
            .cache
            .lock()
            .expect("worker cache poisoned")
            .get(&key);
        if let Some(outcome) = hit {
            return Ok((*outcome).clone());
        }
        if let Some(store) = &shared.store {
            let promoted = store.lock().expect("worker store poisoned").get(key);
            if let Some(outcome) = promoted {
                let outcome = Arc::new(outcome);
                shared
                    .cache
                    .lock()
                    .expect("worker cache poisoned")
                    .insert(key, outcome.clone());
                return Ok((*outcome).clone());
            }
        }
    }
    match shared.exec.execute(spec) {
        Ok(outcome) => {
            let arc = Arc::new(outcome.clone());
            shared
                .cache
                .lock()
                .expect("worker cache poisoned")
                .insert(key, arc);
            if let Some(store) = &shared.store {
                let _ = store
                    .lock()
                    .expect("worker store poisoned")
                    .put(key, &outcome);
            }
            Ok(outcome)
        }
        Err(e) => Err((e.kind, e.message)),
    }
}
