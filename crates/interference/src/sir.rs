//! Cumulative SIR evaluation and RS-mode capture.
//!
//! The paper's physical interference model (Section III): receiver `v`
//! decodes transmitter `u` iff
//!
//! ```text
//!            P_u · D(u, v)^{-α}
//! SIR = ─────────────────────────────── ≥ η
//!        Σ_{w ≠ u}  P_w · D(w, v)^{-α}
//! ```
//!
//! where the sum runs over **all** other concurrent transmitters, primary
//! and secondary alike. The RS (Re-Start) mode footnote is realized by
//! [`capture`]: a receiver locks onto the strongest incoming signal and
//! decodes it iff its SIR clears the threshold.

use crate::PhyParams;
use crn_geometry::Point;

/// A concurrent transmitter: position and transmit power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transmitter {
    /// Transmitter position.
    pub position: Point,
    /// Transmit power (`P_p` for PUs, `P_s` for SUs).
    pub power: f64,
}

impl Transmitter {
    /// Convenience constructor.
    #[must_use]
    pub fn new(position: Point, power: f64) -> Self {
        Self { position, power }
    }
}

/// Total interference power at `receiver` from every transmitter except
/// the one at index `signal_index` (pass `usize::MAX` to sum all).
#[must_use]
pub fn interference_at(
    params: &PhyParams,
    receiver: Point,
    transmitters: &[Transmitter],
    signal_index: usize,
) -> f64 {
    transmitters
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != signal_index)
        .map(|(_, t)| params.received_power(t.power, t.position.distance(receiver)))
        .sum()
}

/// SIR at `receiver` for the signal from `transmitters[signal_index]`,
/// with every other entry acting as interference.
///
/// Returns `f64::INFINITY` when there is no interference (the paper's
/// model is interference-limited; noise is not modeled).
///
/// # Panics
///
/// Panics if `signal_index` is out of range.
#[must_use]
pub fn sir_at(
    params: &PhyParams,
    receiver: Point,
    transmitters: &[Transmitter],
    signal_index: usize,
) -> f64 {
    let s = transmitters[signal_index];
    let signal = params.received_power(s.power, s.position.distance(receiver));
    let interference = interference_at(params, receiver, transmitters, signal_index);
    if interference == 0.0 {
        f64::INFINITY
    } else {
        signal / interference
    }
}

/// Whether the transmission `transmitters[signal_index] → receiver`
/// succeeds against threshold `eta` under the cumulative physical model.
///
/// # Panics
///
/// Panics if `signal_index` is out of range.
#[must_use]
pub fn transmission_ok(
    params: &PhyParams,
    receiver: Point,
    transmitters: &[Transmitter],
    signal_index: usize,
    eta: f64,
) -> bool {
    sir_at(params, receiver, transmitters, signal_index) >= eta
}

/// RS-mode capture: among `candidates` (indices into `transmitters` of
/// signals *addressed to* this receiver), returns the index the receiver
/// locks onto — the strongest received signal — **iff** that signal's SIR
/// against all remaining transmitters meets `eta`. Returns `None` when no
/// candidate is decodable.
///
/// This mirrors the paper's footnote 1: "a receiver will switch to receive
/// the stronger signal as long as the SIR threshold for the stronger
/// signal can be satisfied".
#[must_use]
pub fn capture(
    params: &PhyParams,
    receiver: Point,
    transmitters: &[Transmitter],
    candidates: &[usize],
    eta: f64,
) -> Option<usize> {
    // One received-power evaluation per candidate, not per pairwise
    // comparison inside max_by.
    let strongest = candidates
        .iter()
        .map(|&c| {
            let t = &transmitters[c];
            (
                c,
                params.received_power(t.power, t.position.distance(receiver)),
            )
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))?
        .0;
    transmission_ok(params, receiver, transmitters, strongest, eta).then_some(strongest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PhyParams {
        PhyParams::builder().build().unwrap()
    }

    #[test]
    fn lone_transmitter_has_infinite_sir() {
        let p = params();
        let txs = [Transmitter::new(Point::new(0.0, 0.0), 10.0)];
        assert_eq!(sir_at(&p, Point::new(5.0, 0.0), &txs, 0), f64::INFINITY);
        assert!(transmission_ok(&p, Point::new(5.0, 0.0), &txs, 0, 10.0));
    }

    #[test]
    fn equidistant_equal_power_gives_unit_sir() {
        let p = params();
        let txs = [
            Transmitter::new(Point::new(-5.0, 0.0), 10.0),
            Transmitter::new(Point::new(5.0, 0.0), 10.0),
        ];
        let sir = sir_at(&p, Point::ORIGIN, &txs, 0);
        assert!((sir - 1.0).abs() < 1e-12);
        assert!(!transmission_ok(&p, Point::ORIGIN, &txs, 0, 1.0001));
        assert!(transmission_ok(&p, Point::ORIGIN, &txs, 0, 1.0));
    }

    #[test]
    fn sir_improves_as_interferer_recedes() {
        let p = params();
        let rx = Point::ORIGIN;
        let mut last = 0.0;
        for d in [10.0, 20.0, 40.0, 80.0] {
            let txs = [
                Transmitter::new(Point::new(-2.0, 0.0), 10.0),
                Transmitter::new(Point::new(d, 0.0), 10.0),
            ];
            let sir = sir_at(&p, rx, &txs, 0);
            assert!(sir > last, "SIR must grow as interferer recedes");
            last = sir;
        }
    }

    #[test]
    fn cumulative_interference_sums_all_others() {
        let p = params();
        let rx = Point::ORIGIN;
        let txs = [
            Transmitter::new(Point::new(-2.0, 0.0), 10.0),
            Transmitter::new(Point::new(10.0, 0.0), 10.0),
            Transmitter::new(Point::new(0.0, 10.0), 5.0),
        ];
        let i = interference_at(&p, rx, &txs, 0);
        let expected = p.received_power(10.0, 10.0) + p.received_power(5.0, 10.0);
        assert!((i - expected).abs() < 1e-12);
    }

    #[test]
    fn alpha_four_doubles_distance_sixteenths_power() {
        let p = params();
        let near = [
            Transmitter::new(Point::new(-1.0, 0.0), 10.0),
            Transmitter::new(Point::new(4.0, 0.0), 10.0),
        ];
        let far = [
            Transmitter::new(Point::new(-1.0, 0.0), 10.0),
            Transmitter::new(Point::new(8.0, 0.0), 10.0),
        ];
        let ratio = sir_at(&p, Point::ORIGIN, &far, 0) / sir_at(&p, Point::ORIGIN, &near, 0);
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn capture_picks_strongest_candidate() {
        let p = params();
        let rx = Point::ORIGIN;
        let txs = [
            Transmitter::new(Point::new(2.0, 0.0), 10.0), // strong (close)
            Transmitter::new(Point::new(8.0, 0.0), 10.0), // weak
        ];
        // Both address the receiver; the close one captures.
        let got = capture(&p, rx, &txs, &[0, 1], p.su_sir_threshold());
        assert_eq!(got, Some(0));
    }

    #[test]
    fn capture_fails_when_sir_below_threshold() {
        let p = params();
        let rx = Point::ORIGIN;
        // Two near-equal signals jam each other.
        let txs = [
            Transmitter::new(Point::new(3.0, 0.0), 10.0),
            Transmitter::new(Point::new(0.0, 3.1), 10.0),
        ];
        assert_eq!(capture(&p, rx, &txs, &[0, 1], 10.0), None);
    }

    #[test]
    fn capture_with_no_candidates_is_none() {
        let p = params();
        let txs = [Transmitter::new(Point::new(1.0, 0.0), 10.0)];
        assert_eq!(capture(&p, Point::ORIGIN, &txs, &[], 1.0), None);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn params() -> PhyParams {
            PhyParams::builder().build().unwrap()
        }

        fn arb_txs() -> impl Strategy<Value = Vec<Transmitter>> {
            proptest::collection::vec(
                (-50.0f64..50.0, -50.0f64..50.0, 0.5f64..20.0)
                    .prop_map(|(x, y, p)| Transmitter::new(Point::new(x, y), p)),
                2..10,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_sir_is_positive_and_finite_or_infinite(txs in arb_txs(), rx_x in -60.0f64..60.0, rx_y in -60.0f64..60.0) {
                let rx = Point::new(rx_x, rx_y);
                let sir = sir_at(&params(), rx, &txs, 0);
                prop_assert!(sir > 0.0);
            }

            #[test]
            fn prop_removing_an_interferer_never_lowers_sir(txs in arb_txs(), rx_x in -60.0f64..60.0, rx_y in -60.0f64..60.0) {
                let rx = Point::new(rx_x, rx_y);
                let full = sir_at(&params(), rx, &txs, 0);
                let mut fewer = txs.clone();
                fewer.pop();
                if !fewer.is_empty() {
                    let reduced = sir_at(&params(), rx, &fewer, 0);
                    prop_assert!(reduced >= full - 1e-12);
                }
            }

            #[test]
            fn prop_scaling_all_powers_preserves_sir(txs in arb_txs(), scale in 0.1f64..10.0) {
                let rx = Point::new(0.0, 0.0);
                let before = sir_at(&params(), rx, &txs, 0);
                let scaled: Vec<Transmitter> = txs
                    .iter()
                    .map(|t| Transmitter::new(t.position, t.power * scale))
                    .collect();
                let after = sir_at(&params(), rx, &scaled, 0);
                if before.is_finite() {
                    prop_assert!((after / before - 1.0).abs() < 1e-9);
                }
            }

            #[test]
            fn prop_capture_returns_a_candidate(txs in arb_txs()) {
                let rx = Point::new(0.0, 0.0);
                let candidates: Vec<usize> = (0..txs.len().min(3)).collect();
                if let Some(w) = capture(&params(), rx, &txs, &candidates, 1.0) {
                    prop_assert!(candidates.contains(&w));
                }
            }
        }
    }

    #[test]
    fn capture_ignores_non_candidate_interferers_as_signals() {
        let p = params();
        let rx = Point::ORIGIN;
        let txs = [
            Transmitter::new(Point::new(100.0, 0.0), 10.0), // candidate, weak
            Transmitter::new(Point::new(1.0, 0.0), 10.0),   // interferer, strong
        ];
        // Only index 0 is addressed to us; the strong interferer kills it.
        assert_eq!(capture(&p, rx, &txs, &[0], 10.0), None);
    }
}
