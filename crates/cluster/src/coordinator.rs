//! The cluster coordinator: one public `crn-serve` endpoint fronting a
//! fleet of worker processes.
//!
//! ## One listener, two vocabularies
//!
//! The coordinator accepts the existing JSON-lines protocol unchanged —
//! clients cannot tell it from a single-process `crn serve`. The same
//! listener also accepts workers: a connection whose first line is
//! `{"v":1,"cmd":"join","worker":NAME}` becomes that worker's channel
//! for the rest of its life (`work` down, `result` up).
//!
//! ## Routing and the at-most-once commit
//!
//! Run/sweep points are admitted through the same ladder as the server
//! (memory cache → persistent store → single-flight coalesce →
//! bounded admission), then routed to a worker by consistent hashing
//! over the spec's cache key ([`HashRing`]). A crashed worker (EOF on
//! its channel) or an overdue job (re-dispatch timer) sends the job to
//! the next ring node — so the same result may eventually arrive twice.
//! Commit is **at most once**: the first result wins the job's slot
//! under its mutex, is cached and persisted, and is what every waiting
//! client observes; late duplicates are counted and dropped. With no
//! live workers the coordinator executes locally through the same
//! [`Executor`], so a degraded fleet degrades to `crn serve`, not to
//! an outage.
//!
//! Bit-identical results at any worker count are a consequence of
//! every process executing specs through the one shared [`Executor`]
//! path and shipping them with the exact-float
//! [`outcome_codec`](crn_serve::outcome_codec).

use crate::ring::HashRing;
use crn_core::CollectionOutcome;
use crn_serve::cache::LruCache;
use crn_serve::exec::{ExecError, Executor};
use crn_serve::protocol::{
    error_response, parse_request, report_json, response_base, ClusterMsg, Request, RunSpec,
    ENGINE_VERSION, PROTOCOL_VERSION,
};
use crn_serve::server::{
    read_bounded_line, store_stats_json, LineRead, LATENCY_BUCKETS_MS, MAX_REQUEST_LINE_BYTES,
};
use crn_serve::store::{ResultStore, StoreConfig};
use crn_serve::sweep::{drive_sweep, write_json_line, PointOutcome};
use crn_serve::ErrorKind;
use crn_workloads::json::Json;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the coordinator is sized; see the field docs for defaults.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Bound on cluster jobs in flight; beyond it new work is rejected
    /// with `429 overloaded` (admission control, like the server queue).
    pub queue_cap: usize,
    /// Coordinator-side in-memory result cache capacity in entries.
    pub cache_cap: usize,
    /// Topology-tier cache capacity for the local-fallback executor.
    pub topo_cache_cap: usize,
    /// Optional persistent result store under the memory cache.
    pub store: Option<StoreConfig>,
    /// Re-dispatch a job still unanswered after this long (0 disables
    /// the timer; crash re-dispatch still works via EOF).
    pub job_timeout_ms: u64,
    /// Virtual nodes per worker on the hash ring.
    pub replicas: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_cap: 256,
            cache_cap: 1024,
            topo_cache_cap: 64,
            store: None,
            job_timeout_ms: 30_000,
            replicas: 64,
        }
    }
}

/// Aggregate coordinator counters (all monotonically increasing).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterCounters {
    /// Run/sweep-point requests received.
    pub received: u64,
    /// Requests answered `ok`.
    pub served: u64,
    /// Answered from the coordinator's in-memory cache.
    pub cache_hits: u64,
    /// Answered from the persistent store.
    pub store_hits: u64,
    /// Coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs sent to a worker (re-dispatches included).
    pub dispatched: u64,
    /// Jobs whose winning result came from a worker.
    pub completed_remote: u64,
    /// Jobs executed by the coordinator itself (no eligible worker).
    pub local_fallbacks: u64,
    /// Jobs re-sent after a worker crash or timeout.
    pub redispatches: u64,
    /// Duplicate results dropped by the at-most-once commit.
    pub late_duplicates: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests whose deadline expired.
    pub timed_out: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Unparseable or over-length request lines.
    pub bad_requests: u64,
    /// Workers that ever joined.
    pub workers_joined: u64,
    /// Worker connections lost (crash or disconnect).
    pub workers_lost: u64,
}

type JobResult = Result<Arc<CollectionOutcome>, ExecError>;

struct JobInner {
    result: Option<JobResult>,
    /// Worker slot currently responsible (None while executing locally).
    assigned: Option<usize>,
    dispatched_at: Instant,
}

/// One admitted cluster job; identical concurrent requests share it.
struct ClusterJob {
    id: u64,
    key: u64,
    spec: RunSpec,
    state: Mutex<JobInner>,
    done: Condvar,
}

impl ClusterJob {
    /// First writer wins; everyone else learns they were late. Waiters
    /// are NOT woken here — [`commit_result`] notifies only after the
    /// coordinator's bookkeeping is done, so a client that observes the
    /// result also observes consistent counters and store state.
    fn try_commit(&self, result: JobResult) -> bool {
        let mut st = self.state.lock().expect("job state poisoned");
        if st.result.is_some() {
            return false;
        }
        st.result = Some(result);
        true
    }

    fn wait(&self, deadline: Option<Instant>) -> Option<JobResult> {
        let mut st = self.state.lock().expect("job state poisoned");
        loop {
            if let Some(r) = st.result.as_ref() {
                return Some(r.clone());
            }
            match deadline {
                None => st = self.done.wait(st).expect("job state poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _) = self
                        .done
                        .wait_timeout(st, d - now)
                        .expect("job state poisoned");
                    st = guard;
                }
            }
        }
    }
}

/// A joined worker as the coordinator sees it.
struct WorkerHandle {
    slot: usize,
    name: String,
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
    dispatched: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

struct ClusterState {
    workers: HashMap<usize, Arc<WorkerHandle>>,
    ring: HashRing,
    jobs_by_id: HashMap<u64, Arc<ClusterJob>>,
    /// Single-flight index: at most one job per cache key.
    jobs_by_key: HashMap<u64, Arc<ClusterJob>>,
    next_id: u64,
    next_slot: usize,
    cache: LruCache<u64, Arc<CollectionOutcome>>,
    counters: ClusterCounters,
    latency_hist: [u64; LATENCY_BUCKETS_MS.len() + 1],
    draining: bool,
}

struct Shared {
    cfg: ClusterConfig,
    started: Instant,
    state: Mutex<ClusterState>,
    /// Local-fallback executor — the same execution core as the server
    /// and the workers, so fallback results are bit-identical.
    exec: Executor,
    store: Option<Mutex<ResultStore>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.state.lock().expect("state poisoned").draining
    }
}

/// Where a winning result came from (counter bookkeeping).
#[derive(Clone, Copy, PartialEq)]
enum Origin {
    Remote(usize),
    Local,
}

/// A running coordinator.
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Coordinator {
    /// Binds and starts the coordinator. Returns as soon as the socket
    /// is bound; workers and clients connect to
    /// [`Coordinator::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures and store open/scan failures.
    pub fn start(cfg: ClusterConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let store = match &cfg.store {
            None => None,
            Some(sc) => Some(Mutex::new(ResultStore::open(sc.clone())?)),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(ClusterState {
                workers: HashMap::new(),
                ring: HashRing::new(cfg.replicas),
                jobs_by_id: HashMap::new(),
                jobs_by_key: HashMap::new(),
                next_id: 1,
                next_slot: 0,
                cache: LruCache::new(cfg.cache_cap),
                counters: ClusterCounters::default(),
                latency_hist: [0; LATENCY_BUCKETS_MS.len() + 1],
                draining: false,
            }),
            started: Instant::now(),
            exec: Executor::new(cfg.topo_cache_cap),
            store,
            cfg,
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("crn-coord-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .expect("spawn coordinator acceptor")
        };
        let monitor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("crn-coord-monitor".into())
                .spawn(move || monitor_loop(&shared))
                .expect("spawn coordinator monitor")
        };
        Ok(Coordinator {
            shared,
            addr,
            accept: Some(accept),
            monitor: Some(monitor),
            connections,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful shutdown: stop accepting, let in-flight
    /// jobs finish (locally if every worker leaves first), hang up on
    /// workers, exit.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// Blocks until fully drained after a shutdown, then returns the
    /// final counter snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a coordinator thread itself panicked.
    pub fn wait(mut self) -> ClusterCounters {
        if let Some(h) = self.accept.take() {
            h.join().expect("accept thread panicked");
        }
        if let Some(h) = self.monitor.take() {
            h.join().expect("monitor thread panicked");
        }
        loop {
            let handle = self.connections.lock().expect("connections poisoned").pop();
            match handle {
                Some(h) => h.join().expect("connection thread panicked"),
                None => break,
            }
        }
        self.shared.state.lock().expect("state poisoned").counters
    }
}

fn initiate_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    {
        let mut st = shared.state.lock().expect("state poisoned");
        if st.draining {
            return;
        }
        st.draining = true;
    }
    // Unblock the accept loop (it re-checks draining after each accept).
    drop(TcpStream::connect_timeout(
        &addr,
        Duration::from_millis(500),
    ));
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        let addr = listener.local_addr().expect("listener has an address");
        let Ok(handle) = std::thread::Builder::new()
            .name("crn-coord-conn".into())
            .spawn(move || connection_loop(stream, &shared, addr))
        else {
            continue;
        };
        connections
            .lock()
            .expect("connections poisoned")
            .push(handle);
    }
}

/// Serves one connection. Starts in client mode; a `join` line converts
/// it into that worker's channel for the rest of its life.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut discarding = false;
    loop {
        match read_bounded_line(
            &mut reader,
            &mut line,
            &mut discarding,
            MAX_REQUEST_LINE_BYTES,
        ) {
            LineRead::Eof | LineRead::Closed => return,
            LineRead::Idle => {
                if shared.draining() {
                    return;
                }
            }
            LineRead::TooLarge => {
                bump_bad_requests(shared);
                let response = error_response(
                    ErrorKind::RequestTooLarge,
                    &format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                );
                if write_json_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            LineRead::Line => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    if let Some(name) = parse_join(trimmed) {
                        // The connection becomes the worker channel; the
                        // writer half moves into the registry.
                        worker_channel_loop(reader, writer, shared, name);
                        return;
                    }
                    let (response, shutdown) = handle_line(trimmed, shared, addr, &mut writer);
                    match response {
                        None => return, // streamed response hit a dead client
                        Some(response) => {
                            if write_json_line(&mut writer, &response).is_err() {
                                return;
                            }
                        }
                    }
                    if shutdown {
                        return;
                    }
                }
                line.clear();
            }
        }
    }
}

fn bump_bad_requests(shared: &Arc<Shared>) {
    shared
        .state
        .lock()
        .expect("state poisoned")
        .counters
        .bad_requests += 1;
}

/// `Some(name)` when the line is a well-formed cluster `join`.
fn parse_join(line: &str) -> Option<String> {
    match ClusterMsg::parse(line) {
        Ok(ClusterMsg::Join { worker }) => Some(worker),
        _ => None,
    }
}

/// Dispatches one public request line; mirrors the server's handler.
fn handle_line(
    line: &str,
    shared: &Arc<Shared>,
    addr: SocketAddr,
    writer: &mut TcpStream,
) -> (Option<Json>, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            bump_bad_requests(shared);
            return (Some(error_response(e.kind, &e.message)), false);
        }
    };
    match request {
        Request::Status => (Some(status_json(shared)), false),
        Request::Stats => (Some(stats_json(shared)), false),
        Request::Shutdown => {
            initiate_shutdown(shared, addr);
            let mut o = response_base(true);
            o.set("shutting_down", Json::Bool(true));
            (Some(o), true)
        }
        Request::Run { spec, timeout_ms } => (Some(handle_run(shared, spec, timeout_ms)), false),
        Request::Sweep {
            spec,
            seeds,
            axis,
            timeout_ms,
            stream,
        } => {
            let sink = stream.then_some(writer as &mut dyn Write);
            let response = drive_sweep(
                &spec,
                &seeds,
                axis.as_ref(),
                timeout_ms,
                sink,
                sweep_window(shared),
                |spec| submit_point(shared, spec),
                |pending, timeout_ms| finish_point(shared, pending, timeout_ms),
            );
            (response, false)
        }
    }
}

/// The sweep pipeline window: twice the fleet's worker count, so every
/// worker has a point in flight and one queued, floored for the
/// no-worker fallback and capped by admission.
fn sweep_window(shared: &Arc<Shared>) -> usize {
    let st = shared.state.lock().expect("state poisoned");
    let workers = st
        .workers
        .values()
        .filter(|w| w.alive.load(Ordering::Relaxed))
        .count();
    (workers * 2).max(4).min(shared.cfg.queue_cap.max(1))
}

// ---------------------------------------------------------------------
// Submission ladder
// ---------------------------------------------------------------------

enum Submitted {
    Cached(Arc<CollectionOutcome>),
    Wait {
        job: Arc<ClusterJob>,
        coalesced: bool,
    },
    Rejected,
    Draining,
}

/// Memory cache → persistent store → coalesce → admission; the same
/// ladder as the server with the worker pool swapped for the ring.
fn submit(shared: &Arc<Shared>, spec: RunSpec) -> Submitted {
    let key = spec.cache_key();
    {
        let mut st = shared.state.lock().expect("state poisoned");
        st.counters.received += 1;
        if st.draining {
            return Submitted::Draining;
        }
        if !spec.inject_panic {
            if let Some(hit) = st.cache.get(&key) {
                st.counters.cache_hits += 1;
                return Submitted::Cached(hit);
            }
        }
        if let Some(job) = st.jobs_by_key.get(&key).cloned() {
            st.counters.coalesced += 1;
            return Submitted::Wait {
                job,
                coalesced: true,
            };
        }
        if shared.store.is_none() || spec.inject_panic {
            return admit(shared, st, spec, key);
        }
    }
    // Memory miss with a store configured: probe disk without the
    // state lock, then re-run the ladder for races.
    if let Some(store) = &shared.store {
        let promoted = store.lock().expect("store poisoned").get(key).map(Arc::new);
        if let Some(outcome) = promoted {
            let mut st = shared.state.lock().expect("state poisoned");
            st.counters.store_hits += 1;
            st.cache.insert(key, outcome.clone());
            return Submitted::Cached(outcome);
        }
    }
    let mut st = shared.state.lock().expect("state poisoned");
    if st.draining {
        return Submitted::Draining;
    }
    if let Some(hit) = st.cache.get(&key) {
        st.counters.cache_hits += 1;
        return Submitted::Cached(hit);
    }
    if let Some(job) = st.jobs_by_key.get(&key).cloned() {
        st.counters.coalesced += 1;
        return Submitted::Wait {
            job,
            coalesced: true,
        };
    }
    admit(shared, st, spec, key)
}

/// Creates the job under the lock and dispatches it after dropping it.
fn admit(
    shared: &Arc<Shared>,
    mut st: std::sync::MutexGuard<'_, ClusterState>,
    spec: RunSpec,
    key: u64,
) -> Submitted {
    if st.jobs_by_id.len() >= shared.cfg.queue_cap {
        st.counters.rejected += 1;
        return Submitted::Rejected;
    }
    let id = st.next_id;
    st.next_id += 1;
    let job = Arc::new(ClusterJob {
        id,
        key,
        spec,
        state: Mutex::new(JobInner {
            result: None,
            assigned: None,
            dispatched_at: Instant::now(),
        }),
        done: Condvar::new(),
    });
    st.jobs_by_id.insert(id, job.clone());
    st.jobs_by_key.insert(key, job.clone());
    drop(st);
    dispatch(shared, &job, None);
    Submitted::Wait {
        job,
        coalesced: false,
    }
}

/// Routes the job to a worker via the ring, or runs it locally when no
/// eligible worker exists. `exclude` skips the current assignee on a
/// timeout re-dispatch.
fn dispatch(shared: &Arc<Shared>, job: &Arc<ClusterJob>, exclude: Option<usize>) {
    let target = {
        let mut st = shared.state.lock().expect("state poisoned");
        let workers = &st.workers;
        let slot = st.ring.route_when(job.key, |slot| {
            Some(slot) != exclude
                && workers
                    .get(&slot)
                    .is_some_and(|w| w.alive.load(Ordering::Relaxed))
        });
        match slot {
            Some(slot) => {
                let w = st.workers[&slot].clone();
                {
                    let mut js = job.state.lock().expect("job state poisoned");
                    if js.result.is_some() {
                        return; // raced a commit; nothing to do
                    }
                    js.assigned = Some(slot);
                    js.dispatched_at = Instant::now();
                }
                st.counters.dispatched += 1;
                Some(w)
            }
            None => {
                let mut js = job.state.lock().expect("job state poisoned");
                if js.result.is_some() {
                    return;
                }
                js.assigned = None;
                js.dispatched_at = Instant::now();
                None
            }
        }
    };
    match target {
        Some(w) => {
            let msg = ClusterMsg::Work {
                id: job.id,
                spec: job.spec.clone(),
            }
            .encode();
            let sent = {
                let mut wr = w.writer.lock().expect("worker writer poisoned");
                write_json_line(&mut *wr, &msg)
            };
            if sent.is_ok() {
                w.dispatched.fetch_add(1, Ordering::Relaxed);
            } else {
                // Dead on arrival: reaping re-dispatches everything
                // assigned to this worker, this job included.
                reap_worker(shared, w.slot);
            }
        }
        None => {
            // No eligible worker: degrade to a single-process server.
            let result = shared.exec.execute(&job.spec).map(Arc::new);
            commit_result(shared, job, result, Origin::Local);
        }
    }
}

/// The at-most-once commit: first result wins, is cached and persisted,
/// and wakes every waiter; late duplicates are counted and dropped.
/// Returns whether this call won.
fn commit_result(
    shared: &Arc<Shared>,
    job: &Arc<ClusterJob>,
    result: JobResult,
    origin: Origin,
) -> bool {
    if !job.try_commit(result.clone()) {
        shared
            .state
            .lock()
            .expect("state poisoned")
            .counters
            .late_duplicates += 1;
        return false;
    }
    {
        let mut st = shared.state.lock().expect("state poisoned");
        st.jobs_by_id.remove(&job.id);
        st.jobs_by_key.remove(&job.key);
        match origin {
            Origin::Remote(_) => st.counters.completed_remote += 1,
            Origin::Local => st.counters.local_fallbacks += 1,
        }
        if let Ok(o) = &result {
            st.cache.insert(job.key, o.clone());
        }
    }
    // Durable commit outside the state lock, still before waiters wake.
    if let (Some(store), Ok(o)) = (&shared.store, &result) {
        let _ = store.lock().expect("store poisoned").put(job.key, o);
    }
    job.done.notify_all();
    true
}

/// Marks a worker dead, removes its ring arcs, and re-dispatches every
/// job it still owed. Idempotent per worker.
fn reap_worker(shared: &Arc<Shared>, slot: usize) {
    let orphans: Vec<Arc<ClusterJob>> = {
        let mut st = shared.state.lock().expect("state poisoned");
        let Some(w) = st.workers.get(&slot) else {
            return;
        };
        if !w.alive.swap(false, Ordering::SeqCst) {
            return; // already reaped
        }
        // Close the socket so the worker process sees EOF and exits.
        let _ = w
            .writer
            .lock()
            .expect("worker writer poisoned")
            .shutdown(std::net::Shutdown::Both);
        st.ring.remove(slot);
        st.counters.workers_lost += 1;
        let orphans: Vec<Arc<ClusterJob>> = st
            .jobs_by_id
            .values()
            .filter(|j| {
                let js = j.state.lock().expect("job state poisoned");
                js.result.is_none() && js.assigned == Some(slot)
            })
            .cloned()
            .collect();
        st.counters.redispatches += orphans.len() as u64;
        orphans
    };
    for job in orphans {
        dispatch(shared, &job, None);
    }
}

/// Re-dispatches jobs a worker has sat on past the timeout. Exits when
/// draining (remaining jobs are owned by their dispatch chains).
fn monitor_loop(shared: &Arc<Shared>) {
    let timeout = match shared.cfg.job_timeout_ms {
        0 => return,
        ms => Duration::from_millis(ms),
    };
    let tick = (timeout / 4).clamp(Duration::from_millis(20), Duration::from_millis(500));
    loop {
        std::thread::sleep(tick);
        if shared.draining() {
            return;
        }
        let overdue: Vec<(Arc<ClusterJob>, Option<usize>)> = {
            let mut st = shared.state.lock().expect("state poisoned");
            let late: Vec<(Arc<ClusterJob>, Option<usize>)> = st
                .jobs_by_id
                .values()
                .filter_map(|j| {
                    let js = j.state.lock().expect("job state poisoned");
                    // Only remotely-assigned jobs can be stuck; local
                    // execution completes synchronously.
                    (js.result.is_none()
                        && js.assigned.is_some()
                        && js.dispatched_at.elapsed() > timeout)
                        .then(|| (j.clone(), js.assigned))
                })
                .collect();
            st.counters.redispatches += late.len() as u64;
            late
        };
        for (job, previous) in overdue {
            dispatch(shared, &job, previous);
        }
    }
}

// ---------------------------------------------------------------------
// Worker channel
// ---------------------------------------------------------------------

/// Registers the worker and consumes its `result` lines until the
/// connection dies, then reaps it.
fn worker_channel_loop(
    mut reader: BufReader<TcpStream>,
    writer: TcpStream,
    shared: &Arc<Shared>,
    name: String,
) {
    let handle = {
        let mut st = shared.state.lock().expect("state poisoned");
        if st.draining {
            return;
        }
        let slot = st.next_slot;
        st.next_slot += 1;
        let handle = Arc::new(WorkerHandle {
            slot,
            name: name.clone(),
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
            dispatched: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        st.workers.insert(slot, handle.clone());
        st.ring.insert(slot, &name);
        st.counters.workers_joined += 1;
        handle
    };
    let mut line = String::new();
    let mut discarding = false;
    loop {
        match read_bounded_line(
            &mut reader,
            &mut line,
            &mut discarding,
            MAX_REQUEST_LINE_BYTES,
        ) {
            LineRead::Idle => {
                // Keep the channel while draining until every in-flight
                // job has committed — late results still matter — then
                // hang up so the worker process winds down on EOF.
                if shared.draining() {
                    let st = shared.state.lock().expect("state poisoned");
                    if st.jobs_by_id.is_empty() {
                        break;
                    }
                }
            }
            LineRead::Eof | LineRead::Closed | LineRead::TooLarge => break,
            LineRead::Line => {
                if let Ok(ClusterMsg::Result { id, result }) = ClusterMsg::parse(line.trim()) {
                    accept_result(shared, &handle, id, result);
                }
                line.clear();
            }
        }
    }
    reap_worker(shared, handle.slot);
}

/// Commits one worker result through the at-most-once path.
fn accept_result(
    shared: &Arc<Shared>,
    worker: &Arc<WorkerHandle>,
    id: u64,
    result: Result<CollectionOutcome, (ErrorKind, String)>,
) {
    let job = {
        let st = shared.state.lock().expect("state poisoned");
        st.jobs_by_id.get(&id).cloned()
    };
    let Some(job) = job else {
        // The job was already committed (and swept from the tables) by
        // someone faster — a late duplicate.
        shared
            .state
            .lock()
            .expect("state poisoned")
            .counters
            .late_duplicates += 1;
        return;
    };
    let failed = result.is_err();
    let result: JobResult = result
        .map(Arc::new)
        .map_err(|(kind, message)| ExecError { kind, message });
    if commit_result(shared, &job, result, Origin::Remote(worker.slot)) {
        if failed {
            worker.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            worker.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Point serving (run + sweep), mirroring the server's shapes
// ---------------------------------------------------------------------

/// A submitted point whose result may not be ready yet.
enum Pending {
    Ready(PointOutcome),
    Wait {
        job: Arc<ClusterJob>,
        coalesced: bool,
        submitted: Instant,
        repro: String,
    },
}

fn submit_point(shared: &Arc<Shared>, spec: RunSpec) -> Pending {
    let submitted = Instant::now();
    let repro = spec.repro();
    match submit(shared, spec) {
        Submitted::Draining => Pending::Ready(PointOutcome::Err(error_response(
            ErrorKind::Draining,
            "coordinator is shutting down",
        ))),
        Submitted::Rejected => Pending::Ready(PointOutcome::Err(error_response(
            ErrorKind::Overloaded,
            &format!(
                "cluster job table full ({} in flight); retry later",
                shared.cfg.queue_cap
            ),
        ))),
        Submitted::Cached(outcome) => Pending::Ready(ok_point(shared, &outcome, true, submitted)),
        Submitted::Wait { job, coalesced } => Pending::Wait {
            job,
            coalesced,
            submitted,
            repro,
        },
    }
}

fn finish_point(shared: &Arc<Shared>, pending: Pending, timeout_ms: Option<u64>) -> PointOutcome {
    let Pending::Wait {
        job,
        submitted,
        repro,
        ..
    } = pending
    else {
        let Pending::Ready(result) = pending else {
            unreachable!()
        };
        return result;
    };
    let deadline = timeout_ms.map(|ms| submitted + Duration::from_millis(ms));
    match job.wait(deadline) {
        None => {
            shared
                .state
                .lock()
                .expect("state poisoned")
                .counters
                .timed_out += 1;
            PointOutcome::Err(error_response(
                ErrorKind::TimedOut,
                &format!(
                    "deadline of {}ms expired; repro: {repro}",
                    timeout_ms.unwrap_or(0)
                ),
            ))
        }
        Some(Err(e)) => {
            shared.state.lock().expect("state poisoned").counters.failed += 1;
            PointOutcome::Err(error_response(
                e.kind,
                &format!("{}; repro: {repro}", e.message),
            ))
        }
        Some(Ok(outcome)) => ok_point(shared, &outcome, false, submitted),
    }
}

/// Success bookkeeping shared by the cached and computed paths.
fn ok_point(
    shared: &Arc<Shared>,
    outcome: &Arc<CollectionOutcome>,
    cached: bool,
    submitted: Instant,
) -> PointOutcome {
    let latency_ms = submitted.elapsed().as_secs_f64() * 1e3;
    {
        let mut st = shared.state.lock().expect("state poisoned");
        st.counters.served += 1;
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&le| latency_ms <= le)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        st.latency_hist[bucket] += 1;
    }
    PointOutcome::Ok {
        outcome: outcome.clone(),
        cached,
    }
}

/// Serves one run request end to end, returning the response line.
fn handle_run(shared: &Arc<Shared>, spec: RunSpec, timeout_ms: Option<u64>) -> Json {
    let key = spec.cache_key();
    let pending = submit_point(shared, spec);
    let coalesced = matches!(
        &pending,
        Pending::Wait {
            coalesced: true,
            ..
        }
    );
    match finish_point(shared, pending, timeout_ms) {
        PointOutcome::Err(response) => response,
        PointOutcome::Ok { outcome, cached } => {
            let mut o = response_base(true);
            o.set("cached", Json::Bool(cached))
                .set("coalesced", Json::Bool(coalesced))
                .set("key", Json::Str(format!("{key:016x}")))
                .set("report", report_json(&outcome));
            o
        }
    }
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

fn status_json(shared: &Arc<Shared>) -> Json {
    let (draining, workers) = {
        let st = shared.state.lock().expect("state poisoned");
        let alive = st
            .workers
            .values()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count();
        (st.draining, alive)
    };
    let mut o = response_base(true);
    o.set(
        "status",
        Json::Str(if draining { "draining" } else { "running" }.into()),
    )
    .set("role", Json::Str("coordinator".into()))
    .set("workers", Json::UInt(workers as u64))
    .set(
        "uptime_s",
        Json::float(shared.started.elapsed().as_secs_f64()),
    )
    .set("engine_version", Json::Str(ENGINE_VERSION.into()))
    .set("protocol_version", Json::UInt(PROTOCOL_VERSION));
    o
}

fn stats_json(shared: &Arc<Shared>) -> Json {
    let (counters_json, cluster_json, cache_json, hist, in_flight, draining) = {
        let st = shared.state.lock().expect("state poisoned");
        let c = st.counters;
        let mut counters = Json::obj();
        counters
            .set("received", Json::UInt(c.received))
            .set("served", Json::UInt(c.served))
            .set("cache_hits", Json::UInt(c.cache_hits))
            .set("store_hits", Json::UInt(c.store_hits))
            .set("coalesced", Json::UInt(c.coalesced))
            .set(
                "computed",
                Json::UInt(c.completed_remote + c.local_fallbacks),
            )
            .set("rejected", Json::UInt(c.rejected))
            .set("timed_out", Json::UInt(c.timed_out))
            .set("failed", Json::UInt(c.failed))
            .set("bad_requests", Json::UInt(c.bad_requests));
        let mut rows = Vec::new();
        let mut slots: Vec<&Arc<WorkerHandle>> = st.workers.values().collect();
        slots.sort_by_key(|w| w.slot);
        for w in slots {
            let mut row = Json::obj();
            row.set("name", Json::Str(w.name.clone()))
                .set("alive", Json::Bool(w.alive.load(Ordering::Relaxed)))
                .set(
                    "dispatched",
                    Json::UInt(w.dispatched.load(Ordering::Relaxed)),
                )
                .set("completed", Json::UInt(w.completed.load(Ordering::Relaxed)))
                .set("failed", Json::UInt(w.failed.load(Ordering::Relaxed)));
            rows.push(row);
        }
        let mut cluster = Json::obj();
        cluster
            .set("workers", Json::Arr(rows))
            .set("workers_joined", Json::UInt(c.workers_joined))
            .set("workers_lost", Json::UInt(c.workers_lost))
            .set("dispatched", Json::UInt(c.dispatched))
            .set("completed_remote", Json::UInt(c.completed_remote))
            .set("local_fallbacks", Json::UInt(c.local_fallbacks))
            .set("redispatches", Json::UInt(c.redispatches))
            .set("late_duplicates", Json::UInt(c.late_duplicates));
        let cache = st.cache.stats();
        let mut cache_json = Json::obj();
        cache_json
            .set("capacity", Json::UInt(st.cache.capacity() as u64))
            .set("len", Json::UInt(st.cache.len() as u64))
            .set("hits", Json::UInt(cache.hits))
            .set("misses", Json::UInt(cache.misses))
            .set("evictions", Json::UInt(cache.evictions))
            .set("insertions", Json::UInt(cache.insertions));
        let mut hist = Vec::with_capacity(st.latency_hist.len());
        for (i, &count) in st.latency_hist.iter().enumerate() {
            let mut bucket = Json::obj();
            bucket.set(
                "le_ms",
                LATENCY_BUCKETS_MS
                    .get(i)
                    .map_or(Json::Null, |&le| Json::float(le)),
            );
            bucket.set("count", Json::UInt(count));
            hist.push(bucket);
        }
        (
            counters,
            cluster,
            cache_json,
            hist,
            st.jobs_by_id.len(),
            st.draining,
        )
    };
    let mut s = Json::obj();
    s.set(
        "uptime_s",
        Json::float(shared.started.elapsed().as_secs_f64()),
    )
    .set("engine_version", Json::Str(ENGINE_VERSION.into()))
    .set("role", Json::Str("coordinator".into()))
    .set("queue_cap", Json::UInt(shared.cfg.queue_cap as u64))
    .set("in_flight", Json::UInt(in_flight as u64))
    .set("draining", Json::Bool(draining))
    .set("counters", counters_json)
    .set("cluster", cluster_json)
    .set("cache", cache_json)
    .set("store", store_stats_json(shared.store.as_ref()))
    .set("latency_ms", Json::Arr(hist));
    let mut o = response_base(true);
    o.set("stats", s);
    o
}
