use crate::{Job, RunRecord, SweepSpec};
use crn_core::{Scenario, ScenarioError};
use crn_shard::ShardConfig;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Execution options for [`run_sweep`].
///
/// `threads: 0` (the [`Default`]) means "auto": use
/// [`std::thread::available_parallelism`], falling back to 1. `threads: 1`
/// runs inline on the calling thread. The optional `progress` callback is
/// invoked after every completed job with `(done, total)`.
///
/// ```
/// use crn_workloads::SweepOptions;
///
/// let quiet = SweepOptions::default();           // auto threads, no progress
/// let seq = SweepOptions::sequential();          // one inline worker
/// let noisy = SweepOptions::with_threads(4)
///     .on_progress(|done, total| eprintln!("{done}/{total}"));
/// assert_eq!(quiet.threads, 0);
/// assert_eq!(seq.threads, 1);
/// assert_eq!(noisy.threads, 4);
/// ```
#[derive(Default)]
pub struct SweepOptions {
    /// Worker thread count; `0` = auto from available parallelism.
    pub threads: usize,
    /// Called after each completed job with `(done, total)`.
    pub progress: Option<Box<dyn Fn(usize, usize) + Send + Sync>>,
    /// Run every job under the live simulation oracle
    /// ([`crn_core::Scenario::run_checked`]): any invariant violation
    /// aborts the sweep as a [`SweepError`] carrying the violation and the
    /// failing job's identity. Off by default — the oracle roughly doubles
    /// per-job cost.
    pub check_invariants: bool,
    /// Spread each job's SIR plane across spatial shards
    /// ([`crn_core::Scenario::run_sharded`]). Reports are bit-identical
    /// to sequential execution, so this composes freely with
    /// `check_invariants` and job-level threading. Sequential by default.
    pub shards: ShardConfig,
}

impl SweepOptions {
    /// Options running on `threads` workers (0 = auto).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Options running inline on the calling thread.
    #[must_use]
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Attach a progress callback invoked after every completed job.
    #[must_use]
    pub fn on_progress<F>(mut self, progress: F) -> Self
    where
        F: Fn(usize, usize) + Send + Sync + 'static,
    {
        self.progress = Some(Box::new(progress));
        self
    }

    /// Enable (or disable) the live simulation oracle for every job.
    #[must_use]
    pub fn check_invariants(mut self, check: bool) -> Self {
        self.check_invariants = check;
        self
    }

    /// Shard each job's SIR plane per `shards` (sequential by default).
    #[must_use]
    pub fn shards(mut self, shards: ShardConfig) -> Self {
        self.shards = shards;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

/// A sweep job that failed to generate or run, with enough identity to
/// reproduce it in isolation.
#[derive(Debug)]
pub struct SweepError {
    /// Figure the failing job belongs to.
    pub figure: String,
    /// Swept-axis name (e.g. `p_t`).
    pub x_name: &'static str,
    /// Swept-axis value of the failing job.
    pub x: f64,
    /// Repetition index of the failing job.
    pub rep: u32,
    /// Underlying scenario failure.
    pub source: ScenarioError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep job failed for {} {}={} rep {}: {}",
            self.figure, self.x_name, self.x, self.rep, self.source
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Executes every job of `spec` and returns one [`RunRecord`] per job, in
/// job order.
///
/// The sweep is embarrassingly parallel; [`SweepOptions::threads`] picks
/// the worker count (0 = auto). Workers claim one **group** of consecutive
/// jobs at a time — [`SweepSpec::jobs`] puts algorithms innermost, so the
/// jobs of a chunk differ only in algorithm and share one generated
/// [`Scenario`] (deployment sampling, connectivity retries, and the
/// per-algorithm simulator worlds are built once per chunk instead of once
/// per job). For **radio axes** ([`crate::AxisKind::varies_topology`] is
/// false) the claimed group widens to a whole repetition — every axis
/// value over one shared deployment — and each value's scenario derives
/// from the previous one via [`Scenario::recustomized`], so the expensive
/// topology phase runs once per repetition, not once per point. A
/// scenario that fails to generate (e.g. a disconnected deployment beyond
/// the retry budget) or to run aborts the sweep — remaining jobs are
/// cancelled at the next boundary — and is reported as a [`SweepError`]
/// carrying the failing job's identity, so a sweep whose points silently
/// vanish cannot misreport a figure.
///
/// # Errors
///
/// Returns the first [`SweepError`] (in job order) encountered.
pub fn run_sweep(spec: &SweepSpec, options: SweepOptions) -> Result<Vec<RunRecord>, SweepError> {
    let jobs = spec.jobs();
    let total = jobs.len();
    let chunk_len = spec.algorithms.len().max(1);
    // Radio axes share one topology per repetition, so a worker claims the
    // repetition's whole contiguous run of jobs and re-customizes along it.
    let stride = if spec.axis.kind.varies_topology() {
        chunk_len
    } else {
        chunk_len * spec.axis.values.len().max(1)
    };
    let threads = options.effective_threads();
    let progress = options.progress.as_deref();
    let check_invariants = options.check_invariants;
    let shards = &options.shards;

    let done = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let mut results: Vec<Option<Result<RunRecord, SweepError>>> = Vec::new();
    results.resize_with(total, || None);
    let results = Mutex::new(&mut results);

    let record = |slot: usize, outcome: Result<RunRecord, SweepError>| {
        if outcome.is_err() {
            failed.store(true, Ordering::Relaxed);
        }
        results.lock().expect("results lock poisoned")[slot] = Some(outcome);
        if let Some(progress) = progress {
            progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
        }
    };

    let worker = |jobs: &[Job]| 'claims: loop {
        let start = next.fetch_add(1, Ordering::Relaxed) * stride;
        if start >= jobs.len() || failed.load(Ordering::Relaxed) {
            break;
        }
        let group = &jobs[start..(start + stride).min(jobs.len())];
        let mut scenario: Option<Scenario> = None;
        for (chunk_idx, chunk) in group.chunks(chunk_len).enumerate() {
            debug_assert!(
                chunk.iter().all(|j| j.params == chunk[0].params),
                "a job chunk must share one parameter set"
            );
            let slot0 = start + chunk_idx * chunk_len;
            // `recustomized` is bit-identical to `generate` (and falls
            // back to it when the topology differs), so later chunks reuse
            // the previous chunk's deployment and worlds for free.
            let derived = match &scenario {
                None => Scenario::generate(&chunk[0].params),
                Some(prev) => prev.recustomized(&chunk[0].params),
            };
            let current = match derived {
                Ok(current) => current,
                Err(source) => {
                    record(slot0, Err(fail_for(&chunk[0], source)));
                    continue 'claims;
                }
            };
            for (offset, job) in chunk.iter().enumerate() {
                let outcome = run_group_job(&current, job, check_invariants, shards);
                let stop = outcome.is_err();
                record(slot0 + offset, outcome);
                if stop {
                    continue 'claims;
                }
            }
            scenario = Some(current);
        }
    };

    if threads == 1 {
        worker(&jobs);
    } else {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| worker(&jobs));
            }
        });
    }

    let slots = std::mem::take(*results.lock().expect("results lock poisoned"));
    // Report the first failure in job order; cancellation may leave later
    // slots empty, but an empty slot can only exist once some job failed.
    let mut records = Vec::with_capacity(total);
    let mut first_error = None;
    for slot in slots {
        match slot {
            Some(Ok(record)) if first_error.is_none() => records.push(record),
            Some(Ok(_)) => {}
            Some(Err(e)) => return Err(e),
            None => {
                first_error.get_or_insert(());
            }
        }
    }
    debug_assert!(
        first_error.is_none() || failed.load(Ordering::Relaxed),
        "incomplete sweep without a recorded failure"
    );
    Ok(records)
}

fn fail_for(job: &Job, source: ScenarioError) -> SweepError {
    SweepError {
        figure: job.figure.clone(),
        x_name: job.x_name,
        x: job.x,
        rep: job.rep,
        source,
    }
}

fn run_group_job(
    scenario: &Scenario,
    job: &Job,
    check_invariants: bool,
    shards: &ShardConfig,
) -> Result<RunRecord, SweepError> {
    // `run_checked` uses the same derived seed as `run`, so checked sweeps
    // reproduce unchecked ones bit-for-bit (probes observe, never perturb);
    // sharded execution is bit-identical too, so all four combinations
    // produce the same records.
    let outcome = if check_invariants {
        scenario
            .run_checked_sharded(job.algorithm, shards)
            .map(|(o, _)| o)
    } else {
        scenario.run_sharded(job.algorithm, shards)
    }
    .map_err(|source| fail_for(job, source))?;
    Ok(RunRecord::from_outcome(
        &job.figure,
        job.x_name,
        job.x,
        job.rep,
        &outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, AxisKind};
    use crn_core::CollectionAlgorithm::{Addc, Coolest};
    use crn_core::ScenarioParams;
    use std::sync::atomic::AtomicUsize;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            figure: "t".into(),
            base: ScenarioParams::builder()
                .num_sus(40)
                .num_pus(6)
                .area_side(40.0)
                .max_connectivity_attempts(500)
                .build(),
            axis: Axis::new(AxisKind::Pt, vec![0.1, 0.2]),
            algorithms: vec![Addc, Coolest],
            reps: 2,
        }
    }

    fn impossible_spec() -> SweepSpec {
        // 40 SUs scattered over a huge area with a tiny retry budget can
        // never produce a connected deployment.
        SweepSpec {
            figure: "fail".into(),
            base: ScenarioParams::builder()
                .num_sus(40)
                .num_pus(0)
                .area_side(100_000.0)
                .max_connectivity_attempts(2)
                .build(),
            axis: Axis::new(AxisKind::Pt, vec![0.1]),
            algorithms: vec![Addc],
            reps: 1,
        }
    }

    #[test]
    fn sequential_run_produces_all_records() {
        let spec = tiny_spec();
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        let records = run_sweep(
            &spec,
            SweepOptions::sequential().on_progress(move |_d, t| {
                assert_eq!(t, 8);
                seen.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .expect("tiny sweep succeeds");
        assert_eq!(records.len(), 8);
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        assert!(records.iter().all(|r| r.finished));
    }

    #[test]
    fn threaded_matches_sequential() {
        let spec = tiny_spec();
        let seq = run_sweep(&spec, SweepOptions::sequential()).unwrap();
        let par = run_sweep(&spec, SweepOptions::with_threads(3)).unwrap();
        assert_eq!(seq, par, "parallel execution must not change results");
    }

    #[test]
    fn zero_threads_means_auto_not_panic() {
        let spec = tiny_spec();
        let auto = run_sweep(&spec, SweepOptions::default()).unwrap();
        let seq = run_sweep(&spec, SweepOptions::sequential()).unwrap();
        assert_eq!(auto, seq);
    }

    #[test]
    fn records_carry_job_identity() {
        let spec = tiny_spec();
        let records = run_sweep(&spec, SweepOptions::sequential()).unwrap();
        assert!(records.iter().any(|r| r.x == 0.1 && r.algorithm == Addc));
        assert!(records.iter().any(|r| r.x == 0.2 && r.algorithm == Coolest));
        assert!(records.iter().all(|r| r.figure == "t" && r.x_name == "p_t"));
    }

    #[test]
    fn checked_sweep_matches_unchecked() {
        let spec = tiny_spec();
        let plain = run_sweep(&spec, SweepOptions::sequential()).unwrap();
        let checked = run_sweep(&spec, SweepOptions::sequential().check_invariants(true))
            .expect("tiny sweep is invariant-clean");
        assert_eq!(plain, checked, "the oracle must not perturb results");
    }

    #[test]
    fn radio_axis_sweep_matches_per_point_fresh_generation() {
        // The runner serves a radio axis from one scenario per rep via
        // recustomization; every record must still be bit-identical to
        // generating that point's scenario from scratch.
        let spec = tiny_spec();
        let records = run_sweep(&spec, SweepOptions::sequential()).unwrap();
        let jobs = spec.jobs();
        assert_eq!(records.len(), jobs.len());
        for (job, rec) in jobs.iter().zip(&records) {
            let fresh = Scenario::generate(&job.params)
                .unwrap()
                .run(job.algorithm)
                .unwrap();
            let expect = RunRecord::from_outcome(&job.figure, job.x_name, job.x, job.rep, &fresh);
            assert_eq!(
                rec, &expect,
                "{}={} rep {} {}: recustomized sweep diverged",
                job.x_name, job.x, job.rep, job.algorithm
            );
        }
    }

    #[test]
    fn topology_axis_sweep_still_groups_per_point() {
        // Node-count axes cannot share a deployment; the sweep must still
        // produce one record per job with per-point worlds.
        let spec = SweepSpec {
            axis: Axis::new(AxisKind::NumPus, vec![4.0, 8.0]),
            ..tiny_spec()
        };
        let records = run_sweep(&spec, SweepOptions::sequential()).unwrap();
        assert_eq!(records.len(), 8);
        let par = run_sweep(&spec, SweepOptions::with_threads(3)).unwrap();
        assert_eq!(records, par);
    }

    #[test]
    fn failures_are_reported_not_panicked() {
        let err = run_sweep(&impossible_spec(), SweepOptions::sequential())
            .expect_err("disconnected scenario must fail");
        assert_eq!(err.figure, "fail");
        assert_eq!(err.rep, 0);
        let msg = err.to_string();
        assert!(
            msg.contains("fail"),
            "error message carries identity: {msg}"
        );
    }
}
