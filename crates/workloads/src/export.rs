//! JSONL / CSV serialization of sweep records and simulator traces.
//!
//! Everything here is hand-rolled, line-oriented, and deterministic —
//! byte-identical output for identical inputs — so exported artifacts
//! can be diffed across runs and machines. Floats use Rust's shortest
//! round-trip formatting.

use crate::RunRecord;
use crn_sim::{TraceEvent, TraceLog};
use std::fmt::Write as _;
use std::path::Path;
use std::str::FromStr;

/// On-disk format for trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (`{"t":…,"event":"tx_end",…}`).
    Jsonl,
    /// Flat CSV with a header row.
    Csv,
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(format!(
                "unknown trace format {other:?} (expected jsonl or csv)"
            )),
        }
    }
}

/// Serializes a trace in `format`.
#[must_use]
pub fn trace_to_string(log: &TraceLog, format: TraceFormat) -> String {
    match format {
        TraceFormat::Jsonl => log.to_jsonl(),
        TraceFormat::Csv => log.to_csv(),
    }
}

/// Writes a trace to `path` in `format`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_trace(path: &Path, log: &TraceLog, format: TraceFormat) -> std::io::Result<()> {
    std::fs::write(path, trace_to_string(log, format))
}

/// Serializes sweep records as JSONL, one record per line, in input
/// order. (CSV rendering of the same records lives in
/// [`crate::table::csv_records`].)
#[must_use]
pub fn records_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_jsonl(r));
        out.push('\n');
    }
    out
}

/// One record as a single JSON line.
#[must_use]
pub fn record_jsonl(r: &RunRecord) -> String {
    let mut s = String::with_capacity(256);
    s.push('{');
    let _ = write!(
        s,
        "\"figure\":{},\"x_name\":{},\"x\":{},\"algorithm\":{},\"rep\":{}",
        json_str(&r.figure),
        json_str(&r.x_name),
        json_f64(r.x),
        json_str(&r.algorithm.to_string()),
        r.rep,
    );
    let _ = write!(
        s,
        ",\"finished\":{},\"delay_slots\":{},\"capacity_fraction\":{}",
        r.finished,
        json_f64(r.delay_slots),
        json_f64(r.capacity_fraction),
    );
    match r.jain {
        Some(j) => {
            let _ = write!(s, ",\"jain\":{}", json_f64(j));
        }
        None => s.push_str(",\"jain\":null"),
    }
    let _ = write!(
        s,
        ",\"attempts\":{},\"successes\":{},\"pu_aborts\":{},\"sir_failures\":{},\"capture_losses\":{}",
        r.attempts, r.successes, r.pu_aborts, r.sir_failures, r.capture_losses,
    );
    let _ = write!(
        s,
        ",\"peak_queue\":{},\"tree_height\":{},\"tree_max_degree\":{}}}",
        r.peak_queue, r.tree_height, r.tree_max_degree,
    );
    s
}

/// JSON number rendering: shortest round-trip for finite values, `null`
/// for NaN/±∞ — JSON has no non-finite literals, and a `NaN` token turns
/// the whole line unparsable (an all-`t = 0` round yields a NaN Jain).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

/// Minimal JSON string encoding (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes any sequence of trace events as JSONL (useful for events
/// gathered outside a [`TraceLog`]).
#[must_use]
pub fn events_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::CollectionAlgorithm;

    fn record() -> RunRecord {
        RunRecord {
            figure: "fig6a".into(),
            x_name: "p_t".into(),
            x: 0.3,
            algorithm: CollectionAlgorithm::Addc,
            rep: 2,
            finished: true,
            delay_slots: 123.5,
            capacity_fraction: 0.25,
            jain: None,
            attempts: 10,
            successes: 8,
            pu_aborts: 1,
            sir_failures: 1,
            capture_losses: 0,
            peak_queue: 3,
            tree_height: 4,
            tree_max_degree: 5,
        }
    }

    #[test]
    fn record_jsonl_is_flat_and_complete() {
        let line = record_jsonl(&record());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"figure\":\"fig6a\""));
        assert!(line.contains("\"algorithm\":\"ADDC\""));
        assert!(line.contains("\"jain\":null"));
        assert!(line.contains("\"delay_slots\":123.5"));
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn records_jsonl_is_one_line_per_record() {
        let out = records_jsonl(&[record(), record()]);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        // A round where every flow lands at t = 0 makes Jain 0/0 = NaN;
        // JSON has no NaN literal, so the writer must fall back to null.
        let mut r = record();
        r.jain = Some(f64::NAN);
        r.delay_slots = f64::INFINITY;
        r.capacity_fraction = f64::NEG_INFINITY;
        let line = record_jsonl(&r);
        assert!(line.contains("\"jain\":null"), "{line}");
        assert!(line.contains("\"delay_slots\":null"), "{line}");
        assert!(line.contains("\"capacity_fraction\":null"), "{line}");
        for token in ["NaN", "inf"] {
            assert!(!line.contains(token), "invalid JSON token {token}: {line}");
        }
        // Finite values still use shortest round-trip formatting.
        assert!(record_jsonl(&record()).contains("\"delay_slots\":123.5"));
    }

    #[test]
    fn figure_names_with_metacharacters_stay_one_json_object() {
        let mut r = record();
        r.figure = "delay \"vs\" N,\nper rep".into();
        let line = record_jsonl(&r);
        assert_eq!(line.matches('{').count(), 1);
        assert!(line.contains("\\\"vs\\\""), "{line}");
        assert!(!line.contains('\n'), "JSONL must stay one line: {line}");
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!("csv".parse::<TraceFormat>().unwrap(), TraceFormat::Csv);
        assert!("xml".parse::<TraceFormat>().is_err());
    }
}
