//! Argument parsing and command execution, kept pure (string in → string
//! out) so every path is unit-testable without spawning processes. The
//! exceptions are the inherently effectful commands: `serve` (binds a
//! socket and blocks) and `submit` (talks to a server); their argument
//! parsing is still pure and unit-tested.

use crn_cluster::{ClusterConfig, Coordinator, WorkerConfig, WorkerNode};
use crn_core::{CollectionAlgorithm, Scenario, ScenarioParams};
use crn_interference::{pcr, PcrConstants, PhyParams};
use crn_serve::client::Client;
use crn_serve::server::{ServeConfig, Server};
use crn_serve::store::StoreConfig;
use crn_shard::{ShardConfig, ShardMode};
use crn_sim::{FaultsConfig, InterferenceModel, InvariantChecker, Traffic};
use crn_theory::DelayBounds;
use crn_workloads::export::{trace_to_string, TraceFormat};
use crn_workloads::faults_wire::fault_plan_from_json;
use crn_workloads::json::Json;
use crn_workloads::table::markdown_figure;
use crn_workloads::{aggregate, presets, run_sweep, Fig6Panel, PresetKind, SweepOptions};
use std::fmt::Write as _;

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  crn run    [--sus N] [--pus N] [--side S] [--pt P] [--seed K] [--algo ALGO]
             [--interference exact|truncated:EPS] [--check-invariants] [--map]
             [--faults PLAN.json | --fault-preset none|churn:RATE] [--shards N|auto]
  crn trace  [run flags] [--format jsonl|csv] [--out FILE]
  crn sweep  <a|b|c|d|e|f|all|churn> [--preset paper|scaled|tiny] [--reps R] [--threads T]
             [--shards N|auto]
  crn pcr    [--alpha A] [--eta-db E] [--pp P] [--ps P] [--big-r R] [--r r]
  crn bounds [--sus N] [--pus N] [--side S] [--pt P]
  crn serve  [--addr H:P] [--workers N] [--queue-cap Q] [--cache-cap C] [--topo-cache-cap T]
             [--store DIR [--store-max-mb M]]
  crn serve  --coordinator [--addr H:P] [--workers N] [--queue-cap Q] [--cache-cap C]
             [--store DIR [--store-max-mb M]] [--job-timeout-ms T]
  crn serve  --join H:P [--name NAME] [--threads T] [--cache-cap C]
             [--store DIR [--store-max-mb M]]
  crn submit --addr H:P  [run flags] [--timeout-ms T] [--seed-count N [--seed-start K] [--stream]]
             | --stats | --status | --shutdown | --raw JSON
algorithms: addc (default), coolest, coolest-oracle, bfs
exit codes: 0 ok, 1 runtime failure (violation, server error, timeout), 2 usage";

/// A command failure with a process exit code attached.
///
/// Usage mistakes (bad flags, unknown commands) exit 2 and reprint the
/// usage text; runtime failures (a failed simulation, an invariant
/// violation under `--check-invariants`, a server-side error from
/// `submit`) exit 1 so scripts can tell "you called it wrong" from "it
/// ran and failed".
#[derive(Debug)]
pub struct CliError {
    /// Human-readable explanation (printed to stderr).
    pub message: String,
    /// Process exit code (1 = runtime failure, 2 = usage error).
    pub code: i32,
    /// Whether main should reprint [`USAGE`] after the message.
    pub show_usage: bool,
}

impl CliError {
    /// A runtime failure: the invocation was well-formed but the work
    /// itself failed. Exits 1, no usage spam.
    pub fn runtime(message: impl std::fmt::Display) -> Self {
        Self {
            message: message.to_string(),
            code: 1,
            show_usage: false,
        }
    }

    /// A usage error: bad flags or values. Exits 2 with usage text.
    pub fn usage(message: impl std::fmt::Display) -> Self {
        Self {
            message: message.to_string(),
            code: 2,
            show_usage: true,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

/// Parses and executes one invocation, returning its stdout.
///
/// # Errors
///
/// Returns a [`CliError`] carrying the message and exit code for unknown
/// commands, malformed flags (exit 2), or runtime failures (exit 1).
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let Some(command) = args.first().cloned() else {
        return Err(CliError::usage("no command given"));
    };
    args.remove(0);
    match command.as_str() {
        "run" => cmd_run(args),
        "trace" => cmd_trace(args),
        "sweep" => cmd_sweep(args),
        "pcr" => cmd_pcr(args),
        "bounds" => cmd_bounds(args),
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "help" | "--help" | "-h" => Ok(format!("{USAGE}\n")),
        other => Err(CliError::usage(format!("unknown command '{other}'"))),
    }
}

fn take<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("flag {flag} requires a value"));
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        raw.parse()
            .map_err(|e| format!("bad value '{raw}' for {flag}: {e}"))
    } else {
        Ok(default)
    }
}

fn ensure_consumed(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unrecognized arguments: {args:?}"))
    }
}

fn parse_algo(s: &str) -> Result<CollectionAlgorithm, String> {
    match s {
        "addc" => Ok(CollectionAlgorithm::Addc),
        "coolest" => Ok(CollectionAlgorithm::Coolest),
        "coolest-oracle" => Ok(CollectionAlgorithm::CoolestOracle),
        "bfs" => Ok(CollectionAlgorithm::BfsTree),
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

fn scenario_params(args: &mut Vec<String>) -> Result<ScenarioParams, String> {
    let sus: usize = take(args, "--sus", 150)?;
    let pus: usize = take(args, "--pus", 16)?;
    let side: f64 = take(args, "--side", 70.0)?;
    let p_t: f64 = take(args, "--pt", 0.3)?;
    let seed: u64 = take(args, "--seed", 0)?;
    let interference: InterferenceModel = take(args, "--interference", InterferenceModel::Exact)?;
    let faults = fault_flags(args)?;
    if !(0.0..=1.0).contains(&p_t) {
        return Err(format!("--pt must be a probability, got {p_t}"));
    }
    if let Some(epsilon) = interference.epsilon() {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(format!(
                "--interference truncation epsilon must lie in (0, 1), got {epsilon}"
            ));
        }
    }
    Ok(ScenarioParams::builder()
        .num_sus(sus)
        .num_pus(pus)
        .area_side(side)
        .p_t(p_t)
        .seed(seed)
        .interference(interference)
        .max_connectivity_attempts(3000)
        .faults(faults)
        .build())
}

/// Parses the fault workload flags: `--faults PLAN.json` (an explicit
/// plan in the `faults_wire` format) or `--fault-preset none|churn:RATE`
/// (the preset grammar). The two are mutually exclusive; absent both, the
/// run is guaranteed bit-for-bit the fault-free simulation.
fn fault_flags(args: &mut Vec<String>) -> Result<FaultsConfig, String> {
    let plan_path: String = take(args, "--faults", String::new())?;
    let preset: String = take(args, "--fault-preset", String::new())?;
    if !plan_path.is_empty() && !preset.is_empty() {
        return Err("--faults and --fault-preset are mutually exclusive".into());
    }
    if !plan_path.is_empty() {
        let text = std::fs::read_to_string(&plan_path)
            .map_err(|e| format!("cannot read fault plan {plan_path}: {e}"))?;
        let v: Json = text
            .trim()
            .parse()
            .map_err(|e| format!("{plan_path}: {e}"))?;
        let plan = fault_plan_from_json(&v).map_err(|e| format!("{plan_path}: {e}"))?;
        return Ok(FaultsConfig::Plan(plan));
    }
    if !preset.is_empty() {
        return preset.parse::<FaultsConfig>();
    }
    Ok(FaultsConfig::None)
}

fn presence(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<String, CliError> {
    let algo = parse_algo(&take(&mut args, "--algo", "addc".to_owned())?)?;
    let show_map = presence(&mut args, "--map");
    let check_invariants = presence(&mut args, "--check-invariants");
    // Undocumented testing aid: run the engine with the Algorithm 1
    // fairness wait disabled while the oracle audits against the honest
    // config, yielding a real end-to-end invariant violation (and exit
    // code 1). Used by the exit-code integration tests.
    let inject_fairness_skip = presence(&mut args, "--inject-fairness-skip");
    let shards = ShardConfig::with_mode(take(&mut args, "--shards", ShardMode::Sequential)?);
    let params = scenario_params(&mut args)?;
    ensure_consumed(&args)?;
    if inject_fairness_skip && !check_invariants {
        return Err(CliError::usage(
            "--inject-fairness-skip requires --check-invariants",
        ));
    }
    if inject_fairness_skip {
        return run_with_injected_fairness_skip(&params, algo);
    }
    let scenario = Scenario::generate(&params).map_err(CliError::runtime)?;
    // `run_checked` shares `run`'s derived seed, so the checked report is
    // identical to the unchecked one — the oracle observes, never perturbs.
    // Sharded execution is bit-identical too, so `--shards` never changes
    // the printed report.
    let (outcome, oracle) = if check_invariants {
        let (outcome, oracle) = scenario
            .run_checked_sharded(algo, &shards)
            .map_err(CliError::runtime)?;
        (outcome, Some(oracle))
    } else {
        (
            scenario
                .run_sharded(algo, &shards)
                .map_err(CliError::runtime)?,
            None,
        )
    };
    let r = &outcome.report;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{algo} on n={} N={} A={}² p_t={} (seed {}, PCR {:.1})",
        params.num_sus,
        params.num_pus,
        params.area_side,
        params.activity.duty_cycle(),
        params.seed,
        scenario.pcr()
    );
    let _ = writeln!(
        out,
        "  delivered {}/{} in {:.0} slots ({:.3} s); finished: {}",
        r.packets_delivered, r.packets_expected, r.delay_slots, r.delay, r.finished
    );
    let _ = writeln!(
        out,
        "  attempts {} | successes {} | PU handoffs {} | SIR losses {} | capture {}",
        r.attempts, r.successes, r.pu_aborts, r.sir_failures, r.capture_losses
    );
    let _ = writeln!(
        out,
        "  capacity {:.4}·W | Jain {:.3} | peak queue {} | tree height {} | Δ {}",
        r.capacity_fraction(),
        r.jain_fairness().unwrap_or(1.0),
        r.peak_queue,
        outcome.tree_height,
        outcome.tree_max_degree
    );
    // Fault lines appear only when a fault workload is attached, so the
    // fault-free output stays byte-identical to the pre-faults CLI.
    if !params.faults.is_none() {
        let _ = writeln!(
            out,
            "  faults [{}]: delivery ratio {:.3} | lost {} | fault aborts {}",
            params.faults,
            r.delivery_ratio(),
            r.packets_lost,
            r.fault_aborts
        );
        let _ = writeln!(
            out,
            "  healing: reparents {} | latency mean {:.4} s, max {:.4} s",
            r.reparents, r.reparent_latency_mean, r.reparent_latency_max
        );
    }
    if let Some(oracle) = oracle {
        let _ = writeln!(
            out,
            "  invariants: ok ({} events checked)",
            oracle.events_checked()
        );
    }
    if show_map {
        let tree = scenario.tree(algo).map_err(CliError::runtime)?;
        let _ = writeln!(out);
        out.push_str(&crn_topology::render_ascii(
            scenario.graph(),
            Some(&tree),
            72,
        ));
    }
    Ok(out)
}

/// The `--inject-fairness-skip` path: the engine runs with
/// `fairness_wait: false` but the [`InvariantChecker`] is configured with
/// the honest MAC, so the oracle reports a scheduler-hygiene violation —
/// which this function turns into a runtime (exit 1) error, exactly like
/// a genuine violation caught in the field.
fn run_with_injected_fairness_skip(
    params: &ScenarioParams,
    algo: CollectionAlgorithm,
) -> Result<String, CliError> {
    let mut rigged = params.clone();
    rigged.mac.fairness_wait = false;
    let scenario = Scenario::generate(&rigged).map_err(CliError::runtime)?;
    let world = scenario.world(algo).map_err(CliError::runtime)?;
    let checker = InvariantChecker::new(world, params.mac).with_repro(
        params.seed,
        format!(
            "n={} N={} side={} alg={algo} (fairness wait disabled)",
            params.num_sus, params.num_pus, params.area_side
        ),
    );
    let sim_seed = rigged.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let (_outcome, oracle) = scenario
        .run_probed(algo, sim_seed, Traffic::Snapshot, checker)
        .map_err(CliError::runtime)?;
    match oracle.first_violation() {
        Some(v) => Err(CliError::runtime(format!("invariant violation: {v}"))),
        None => Err(CliError::runtime(
            "injected fairness skip produced no violation — oracle is blind",
        )),
    }
}

/// `crn trace`: run one scenario with a [`crn_sim::TraceLog`] attached and
/// emit the event stream (JSONL by default). The trace uses the same
/// derived seed as `crn run`, so its `delivery` events line up exactly
/// with the run's reported delivery times.
fn cmd_trace(mut args: Vec<String>) -> Result<String, CliError> {
    let algo = parse_algo(&take(&mut args, "--algo", "addc".to_owned())?)?;
    let format: TraceFormat = take(&mut args, "--format", "jsonl".to_owned())?.parse()?;
    let out_path: String = take(&mut args, "--out", String::new())?;
    let shards = ShardConfig::with_mode(take(&mut args, "--shards", ShardMode::Sequential)?);
    let params = scenario_params(&mut args)?;
    ensure_consumed(&args)?;
    let scenario = Scenario::generate(&params).map_err(CliError::runtime)?;
    // Same derived seed as `run_traced`; sharded execution yields the
    // identical trace, so `--shards` is accepted here like any run flag.
    let (outcome, log) = scenario
        .run_probed_sharded(
            algo,
            params.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            Traffic::Snapshot,
            crn_sim::TraceLog::unbounded(),
            &shards,
        )
        .map_err(CliError::runtime)?;
    let rendered = trace_to_string(&log, format);
    if out_path.is_empty() {
        return Ok(rendered);
    }
    std::fs::write(&out_path, &rendered)
        .map_err(|e| CliError::runtime(format!("cannot write {out_path}: {e}")))?;
    Ok(format!(
        "wrote {} events ({} dropped) to {out_path}; delivered {}/{} in {:.0} slots\n",
        log.len(),
        log.dropped(),
        outcome.report.packets_delivered,
        outcome.report.packets_expected,
        outcome.report.delay_slots,
    ))
}

fn cmd_sweep(mut args: Vec<String>) -> Result<String, CliError> {
    let preset: PresetKind = take(&mut args, "--preset", "tiny".to_owned())?.parse()?;
    let reps: u32 = take(&mut args, "--reps", 0)?;
    let threads: usize = take(&mut args, "--threads", 1)?;
    let shards = ShardConfig::with_mode(take(&mut args, "--shards", ShardMode::Sequential)?);
    let churn = presence(&mut args, "churn");
    let mut specs: Vec<crn_workloads::SweepSpec> = if args.iter().any(|a| a == "all") {
        args.clear();
        Fig6Panel::ALL
            .iter()
            .map(|&p| presets::fig6_spec(preset, p))
            .collect()
    } else {
        let parsed: Result<Vec<Fig6Panel>, String> = args.iter().map(|a| a.parse()).collect();
        let panels = parsed?;
        args.clear();
        panels
            .into_iter()
            .map(|p| presets::fig6_spec(preset, p))
            .collect()
    };
    if churn {
        specs.push(presets::churn_spec(preset));
    }
    if specs.is_empty() {
        return Err(CliError::usage(
            "sweep requires panel letters a..f, 'all', or 'churn'",
        ));
    }
    let mut out = String::new();
    for mut spec in specs {
        if reps > 0 {
            spec.reps = reps;
        }
        let records = run_sweep(
            &spec,
            SweepOptions::with_threads(threads).shards(shards.clone()),
        )
        .map_err(CliError::runtime)?;
        let _ = writeln!(out, "## {} [{preset}, {} reps]\n", spec.figure, spec.reps);
        let _ = writeln!(out, "{}", markdown_figure(&aggregate(&records)));
    }
    Ok(out)
}

fn cmd_pcr(mut args: Vec<String>) -> Result<String, CliError> {
    let alpha: f64 = take(&mut args, "--alpha", 4.0)?;
    let eta_db: f64 = take(&mut args, "--eta-db", 10.0)?;
    let pp: f64 = take(&mut args, "--pp", 10.0)?;
    let ps: f64 = take(&mut args, "--ps", 10.0)?;
    let big_r: f64 = take(&mut args, "--big-r", 12.0)?;
    let r: f64 = take(&mut args, "--r", 10.0)?;
    ensure_consumed(&args)?;
    let phy = PhyParams::builder()
        .alpha(alpha)
        .pu_sir_threshold_db(eta_db)
        .su_sir_threshold_db(eta_db)
        .pu_power(pp)
        .su_power(ps)
        .pu_radius(big_r)
        .su_radius(r)
        .build()
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for constants in [PcrConstants::Paper, PcrConstants::Corrected] {
        let _ = writeln!(
            out,
            "{constants:?}: kappa = {:.3}, PCR = {:.2}",
            pcr::kappa(&phy, constants),
            pcr::carrier_sensing_range(&phy, constants)
        );
    }
    Ok(out)
}

fn cmd_bounds(mut args: Vec<String>) -> Result<String, CliError> {
    let params = scenario_params(&mut args)?;
    ensure_consumed(&args)?;
    let scenario = Scenario::generate(&params).map_err(CliError::runtime)?;
    let tree = scenario
        .tree(CollectionAlgorithm::Addc)
        .map_err(CliError::runtime)?;
    let c0 = params.area_side * params.area_side / params.num_sus as f64;
    let b = DelayBounds::compute(
        &params.phy,
        params.pcr_constants,
        params.pu_density(),
        params.activity.duty_cycle(),
        params.num_sus,
        c0,
        tree.max_degree(),
        tree.root_degree(),
    );
    let mut out = String::new();
    let _ = writeln!(out, "kappa = {:.3}, p_o = {:.5}", b.kappa, b.p_o);
    let _ = writeln!(
        out,
        "Lemma 5 (CDS nodes in PCR) <= {:.1}; Lemma 6 (SUs in PCR) <= {:.1}; Δ w.h.p. <= {:.1}",
        b.lemma5_cds_nodes, b.lemma6_sus, b.delta_whp_bound
    );
    let _ = writeln!(
        out,
        "Theorem 1 service <= {:.0} slots; Lemma 8 backbone <= {:.0} slots",
        b.theorem1_service_slots, b.lemma8_service_slots
    );
    let _ = writeln!(
        out,
        "Theorem 2 delay <= {:.0} slots; capacity >= {:.6}·W",
        b.theorem2_delay_slots, b.capacity_fraction_lower
    );
    Ok(out)
}

/// Parses the shared persistent-store flags: `--store DIR` enables the
/// on-disk result store there; `--store-max-mb M` (default 0 = no limit)
/// caps it with LRU eviction. Pure, unit-tested.
fn parse_store_flags(args: &mut Vec<String>) -> Result<Option<StoreConfig>, CliError> {
    let dir: String = take(args, "--store", String::new())?;
    let max_mb: u64 = take(args, "--store-max-mb", 0)?;
    if dir.is_empty() {
        if max_mb > 0 {
            return Err(CliError::usage("--store-max-mb requires --store DIR"));
        }
        return Ok(None);
    }
    Ok(Some(StoreConfig {
        dir: dir.into(),
        max_bytes: max_mb * 1024 * 1024,
    }))
}

/// Parses `crn serve` flags into a [`ServeConfig`] (pure, unit-tested).
fn parse_serve_config(args: &mut Vec<String>) -> Result<ServeConfig, CliError> {
    let addr: String = take(args, "--addr", "127.0.0.1:0".to_owned())?;
    let workers: usize = take(args, "--workers", 4)?;
    let queue_cap: usize = take(args, "--queue-cap", 64)?;
    let cache_cap: usize = take(args, "--cache-cap", 1024)?;
    let topo_cache_cap: usize = take(args, "--topo-cache-cap", 64)?;
    let store = parse_store_flags(args)?;
    if workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }
    Ok(ServeConfig {
        addr,
        workers,
        queue_cap,
        cache_cap,
        topo_cache_cap,
        store,
    })
}

/// Parses `crn serve --coordinator` flags (pure, unit-tested). The
/// returned worker count is the number of worker *processes* to spawn
/// (0 = none; external workers join with `crn serve --join`).
fn parse_cluster_config(args: &mut Vec<String>) -> Result<(ClusterConfig, usize), CliError> {
    let addr: String = take(args, "--addr", "127.0.0.1:0".to_owned())?;
    let workers: usize = take(args, "--workers", 2)?;
    let queue_cap: usize = take(args, "--queue-cap", 256)?;
    let cache_cap: usize = take(args, "--cache-cap", 1024)?;
    let topo_cache_cap: usize = take(args, "--topo-cache-cap", 64)?;
    let job_timeout_ms: u64 = take(args, "--job-timeout-ms", 30_000)?;
    let store = parse_store_flags(args)?;
    Ok((
        ClusterConfig {
            addr,
            queue_cap,
            cache_cap,
            topo_cache_cap,
            // The coordinator's own store lives in a subdirectory so
            // spawned workers can share the parent --store DIR.
            store: store.map(|s| StoreConfig {
                dir: s.dir.join("coordinator"),
                max_bytes: s.max_bytes,
            }),
            job_timeout_ms,
            ..ClusterConfig::default()
        },
        workers,
    ))
}

/// Parses `crn serve --join` flags into a [`WorkerConfig`] (pure,
/// unit-tested). `coordinator` is the already-extracted `--join` value.
fn parse_worker_config(
    coordinator: String,
    args: &mut Vec<String>,
) -> Result<WorkerConfig, CliError> {
    let name: String = take(args, "--name", format!("worker-{}", std::process::id()))?;
    let threads: usize = take(args, "--threads", 2)?;
    let cache_cap: usize = take(args, "--cache-cap", 1024)?;
    let topo_cache_cap: usize = take(args, "--topo-cache-cap", 64)?;
    let store = parse_store_flags(args)?;
    if threads == 0 {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    Ok(WorkerConfig {
        coordinator,
        name,
        threads,
        cache_cap,
        topo_cache_cap,
        store,
    })
}

/// `crn serve`: bind, print the bound address immediately (so scripts can
/// parse the ephemeral port), then block until a `shutdown` request
/// drains the service; the final counter summary becomes the output.
///
/// Three modes share the verb: the classic single process (default), a
/// fleet coordinator (`--coordinator`, optionally spawning `--workers N`
/// worker processes of this same binary), and a worker (`--join H:P`).
fn cmd_serve(mut args: Vec<String>) -> Result<String, CliError> {
    let join_addr: String = take(&mut args, "--join", String::new())?;
    let coordinator = presence(&mut args, "--coordinator");
    if coordinator && !join_addr.is_empty() {
        return Err(CliError::usage(
            "--coordinator and --join are mutually exclusive",
        ));
    }
    if !join_addr.is_empty() {
        return cmd_serve_worker(join_addr, args);
    }
    if coordinator {
        return cmd_serve_coordinator(args);
    }
    let cfg = parse_serve_config(&mut args)?;
    ensure_consumed(&args)?;
    let server =
        Server::start(cfg).map_err(|e| CliError::runtime(format!("cannot bind listener: {e}")))?;
    announce(&format!("crn-serve listening on {}", server.local_addr()));
    let c = server.wait();
    Ok(format!(
        "served {} ok ({} cache hits, {} store hits, {} coalesced, {} computed); \
         rejected {}, timed out {}, failed {}, bad requests {}\n",
        c.served,
        c.cache_hits,
        c.store_hits,
        c.coalesced,
        c.computed,
        c.rejected,
        c.timed_out,
        c.failed,
        c.bad_requests,
    ))
}

/// Prints a line to stdout immediately (before the blocking wait), so
/// scripts can parse ephemeral ports and readiness.
fn announce(line: &str) {
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "{line}");
    let _ = stdout.flush();
}

/// `crn serve --join`: run one worker until the coordinator hangs up.
fn cmd_serve_worker(coordinator: String, mut args: Vec<String>) -> Result<String, CliError> {
    let cfg = parse_worker_config(coordinator, &mut args)?;
    ensure_consumed(&args)?;
    let name = cfg.name.clone();
    let addr = cfg.coordinator.clone();
    announce(&format!("crn-serve worker '{name}' joined {addr}"));
    WorkerNode::run(cfg)
        .map_err(|e| CliError::runtime(format!("worker cannot join {addr}: {e}")))?;
    Ok(format!("worker '{name}' released by {addr}\n"))
}

/// `crn serve --coordinator`: bind the fleet endpoint, spawn `--workers N`
/// worker processes of this same binary (each with its own store
/// subdirectory when `--store` is given), and block until shutdown.
fn cmd_serve_coordinator(mut args: Vec<String>) -> Result<String, CliError> {
    // Remember the parent store dir before parsing consumes the flags.
    let store_dir: String = {
        let probe = args.iter().position(|a| a == "--store");
        probe
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_default()
    };
    let (cfg, worker_count) = parse_cluster_config(&mut args)?;
    ensure_consumed(&args)?;
    let coordinator = Coordinator::start(cfg)
        .map_err(|e| CliError::runtime(format!("cannot start coordinator: {e}")))?;
    let addr = coordinator.local_addr();
    announce(&format!("crn-serve coordinator listening on {addr}"));
    let exe = std::env::current_exe()
        .map_err(|e| CliError::runtime(format!("cannot locate own binary: {e}")))?;
    let mut children = Vec::new();
    for i in 0..worker_count {
        let name = format!("worker-{i}");
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve")
            .arg("--join")
            .arg(addr.to_string())
            .arg("--name")
            .arg(&name)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit());
        if !store_dir.is_empty() {
            let dir = std::path::Path::new(&store_dir).join(&name);
            cmd.arg("--store").arg(dir);
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                coordinator.shutdown();
                coordinator.wait();
                return Err(CliError::runtime(format!(
                    "cannot spawn worker process '{name}': {e}"
                )));
            }
        }
    }
    let c = coordinator.wait();
    // Reaped workers see EOF and exit on their own; collect them so no
    // zombies outlive the coordinator.
    for mut child in children {
        let _ = child.wait();
    }
    Ok(format!(
        "served {} ok ({} cache hits, {} store hits, {} coalesced; \
         {} remote, {} local fallbacks); \
         {} joined / {} lost workers, {} redispatches, {} late duplicates; \
         rejected {}, timed out {}, failed {}, bad requests {}\n",
        c.served,
        c.cache_hits,
        c.store_hits,
        c.coalesced,
        c.completed_remote,
        c.local_fallbacks,
        c.workers_joined,
        c.workers_lost,
        c.redispatches,
        c.late_duplicates,
        c.rejected,
        c.timed_out,
        c.failed,
        c.bad_requests,
    ))
}

/// Builds the protocol request line for `crn submit` (pure, unit-tested).
fn build_submit_request(args: &mut Vec<String>) -> Result<String, CliError> {
    let raw: String = take(args, "--raw", String::new())?;
    if !raw.is_empty() {
        return Ok(raw);
    }
    for (flag, cmd) in [
        ("--stats", "stats"),
        ("--status", "status"),
        ("--shutdown", "shutdown"),
    ] {
        if presence(args, flag) {
            return Ok(format!(r#"{{"v":1,"cmd":"{cmd}"}}"#));
        }
    }
    let algo: String = take(args, "--algo", "addc".to_owned())?;
    parse_algo(&algo)?; // reject bad algorithms locally, before shipping
    let check_invariants = presence(args, "--check-invariants");
    let stream = presence(args, "--stream");
    let sus: u64 = take(args, "--sus", 150)?;
    let pus: u64 = take(args, "--pus", 16)?;
    let side: f64 = take(args, "--side", 70.0)?;
    let p_t: f64 = take(args, "--pt", 0.3)?;
    let seed: u64 = take(args, "--seed", 0)?;
    let interference: InterferenceModel = take(args, "--interference", InterferenceModel::Exact)?;
    let timeout_ms: u64 = take(args, "--timeout-ms", 0)?;
    let seed_count: u64 = take(args, "--seed-count", 0)?;
    let seed_start: u64 = take(args, "--seed-start", 0)?;
    if stream && seed_count == 0 {
        return Err(CliError::usage("--stream requires a sweep (--seed-count)"));
    }
    let mut params = Json::obj();
    params
        .set("sus", Json::UInt(sus))
        .set("pus", Json::UInt(pus))
        .set("side", Json::float(side))
        .set("pt", Json::float(p_t))
        .set("seed", Json::UInt(seed))
        .set("interference", Json::Str(interference.to_string()));
    let mut req = Json::obj();
    req.set("v", Json::UInt(1)).set(
        "cmd",
        Json::Str(if seed_count > 0 { "sweep" } else { "run" }.into()),
    );
    req.set("params", params)
        .set("algo", Json::Str(algo))
        .set("check_invariants", Json::Bool(check_invariants));
    if seed_count > 0 {
        req.set("seed_start", Json::UInt(seed_start))
            .set("seed_count", Json::UInt(seed_count));
        if stream {
            req.set("stream", Json::Bool(true));
        }
    }
    if timeout_ms > 0 {
        req.set("timeout_ms", Json::UInt(timeout_ms));
    }
    Ok(req.to_string())
}

/// The latency percentile ladder `crn submit --stats` summarizes.
const STATS_PERCENTILES: [(&str, f64); 3] = [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

/// Upper-bound percentile from a cumulative histogram: the first bucket
/// edge at which the cumulative count covers fraction `q` of the samples.
/// A `None` edge is the open `+∞` bucket. Returns `None` when empty.
fn histogram_percentile(buckets: &[(Option<f64>, u64)], q: f64) -> Option<Option<f64>> {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    // ceil(q·total), clamped to at least one sample.
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0;
    for &(le, count) in buckets {
        cumulative += count;
        if cumulative >= target {
            return Some(le);
        }
    }
    None
}

/// Renders the `submit --stats` percentile summary from a stats response,
/// reading the serve layer's `latency_ms` histogram. Returns `None` when
/// the response carries no histogram (e.g. `--raw` against an older
/// server).
fn stats_latency_summary(response: &Json) -> Option<String> {
    let hist = response.get("stats")?.get("latency_ms")?.as_arr()?;
    let buckets: Vec<(Option<f64>, u64)> = hist
        .iter()
        .map(|b| {
            (
                b.get("le_ms").and_then(Json::as_f64),
                b.get("count").and_then(Json::as_u64).unwrap_or(0),
            )
        })
        .collect();
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return Some("latency: no served requests yet\n".to_owned());
    }
    // The +∞ bucket reports as "greater than the last finite edge".
    let last_edge = buckets.iter().rev().find_map(|&(le, _)| le);
    let mut line = format!("latency over {total} served:");
    for (name, q) in STATS_PERCENTILES {
        let bound = match histogram_percentile(&buckets, q)? {
            Some(le) => format!("<={le}ms"),
            None => last_edge.map_or("?".to_owned(), |le| format!(">{le}ms")),
        };
        let _ = write!(line, " {name} {bound}");
    }
    line.push('\n');
    Some(line)
}

/// Renders the `submit --stats` persistent-store summary. `None` when no
/// store block is present or no store is configured (nothing to say).
fn stats_store_summary(response: &Json) -> Option<String> {
    let store = response.get("stats")?.get("store")?;
    if store.get("configured").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    Some(format!(
        "store: {} results, {} bytes; {} hits, {} evictions\n",
        store.get("len").and_then(Json::as_u64).unwrap_or(0),
        store.get("store_bytes").and_then(Json::as_u64).unwrap_or(0),
        store.get("store_hits").and_then(Json::as_u64).unwrap_or(0),
        store
            .get("store_evictions")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    ))
}

/// Renders the `submit --stats` per-worker rows when the server is a
/// cluster coordinator. `None` against a single-process server.
fn stats_cluster_summary(response: &Json) -> Option<String> {
    let cluster = response.get("stats")?.get("cluster")?;
    let rows = cluster.get("workers").and_then(Json::as_arr)?;
    let mut out = format!(
        "cluster: {} workers ({} lost), {} redispatches, {} local fallbacks\n",
        rows.len(),
        cluster
            .get("workers_lost")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        cluster
            .get("redispatches")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        cluster
            .get("local_fallbacks")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  {} [{}]: dispatched {}, completed {}, failed {}",
            row.get("name").and_then(Json::as_str).unwrap_or("?"),
            if row.get("alive").and_then(Json::as_bool) == Some(true) {
                "alive"
            } else {
                "lost"
            },
            row.get("dispatched").and_then(Json::as_u64).unwrap_or(0),
            row.get("completed").and_then(Json::as_u64).unwrap_or(0),
            row.get("failed").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    Some(out)
}

/// `crn submit`: send one request to a running `crn serve` and print the
/// response line. Exit code 0 for an `ok` response, 1 for a server-side
/// error (overloaded, timed out, failed run), 2 for bad flags. `--stats`
/// appends a human-readable p50/p95/p99 summary computed from the
/// server's latency histogram.
fn cmd_submit(mut args: Vec<String>) -> Result<String, CliError> {
    let addr: String = take(&mut args, "--addr", String::new())?;
    if addr.is_empty() {
        return Err(CliError::usage("submit requires --addr HOST:PORT"));
    }
    let want_stats = args.iter().any(|a| a == "--stats");
    let want_stream = args.iter().any(|a| a == "--stream");
    let request = build_submit_request(&mut args)?;
    ensure_consumed(&args)?;
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| CliError::runtime(format!("cannot connect to {addr}: {e}")))?;
    let response = if want_stream {
        // Streamed sweep: rows go to stdout as they arrive (JSONL), the
        // summary line is the command output.
        client
            .request_stream(&request, |row| announce(&row.to_string()))
            .map_err(|e| CliError::runtime(format!("request to {addr} failed: {e}")))?
    } else {
        client
            .request_line(&request)
            .map_err(|e| CliError::runtime(format!("request to {addr} failed: {e}")))?
    };
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        if want_stats {
            let mut out = format!("{response}\n");
            for extra in [
                stats_latency_summary(&response),
                stats_store_summary(&response),
                stats_cluster_summary(&response),
            ]
            .into_iter()
            .flatten()
            {
                out.push_str(&extra);
            }
            return Ok(out);
        }
        return Ok(format!("{response}\n"));
    }
    let kind = response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let message = response
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("(no message)");
    Err(CliError::runtime(format!(
        "server error ({kind}): {message}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        dispatch(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn no_command_is_an_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(e.message.contains("frobnicate"));
        assert_eq!(e.code, 2);
        assert!(e.show_usage);
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("crn run"));
    }

    #[test]
    fn pcr_defaults_match_library() {
        let out = run(&["pcr"]).unwrap();
        let phy = PhyParams::builder().build().unwrap();
        let expect = pcr::carrier_sensing_range(&phy, PcrConstants::Paper);
        assert!(out.contains(&format!("{expect:.2}")), "{out}");
        assert!(out.contains("Corrected"));
    }

    #[test]
    fn pcr_rejects_bad_alpha() {
        let e = run(&["pcr", "--alpha", "1.5"]).unwrap_err();
        assert!(e.message.contains("path-loss"), "{e}");
    }

    #[test]
    fn run_executes_a_small_scenario() {
        let out = run(&[
            "run", "--sus", "40", "--pus", "4", "--side", "36", "--seed", "3",
        ])
        .unwrap();
        assert!(out.contains("delivered 40/40"), "{out}");
        assert!(out.contains("finished: true"), "{out}");
    }

    #[test]
    fn run_with_each_algorithm() {
        for algo in ["addc", "coolest", "coolest-oracle", "bfs"] {
            let out = run(&[
                "run", "--algo", algo, "--sus", "30", "--pus", "3", "--side", "31",
            ])
            .unwrap();
            assert!(out.contains("delivered 30/30"), "{algo}: {out}");
        }
    }

    #[test]
    fn trace_emits_one_delivery_event_per_packet() {
        let common = ["--sus", "30", "--pus", "3", "--side", "31", "--seed", "3"];
        let mut trace_args = vec!["trace"];
        trace_args.extend_from_slice(&common);
        let trace = run(&trace_args).unwrap();
        let deliveries = trace
            .lines()
            .filter(|l| l.contains("\"event\":\"delivery\""))
            .count();
        assert_eq!(deliveries, 30, "{trace}");
        // And the stream is deterministic: rerunning gives identical bytes.
        assert_eq!(trace, run(&trace_args).unwrap());
    }

    #[test]
    fn trace_csv_has_header_and_rows() {
        let out = run(&[
            "trace", "--format", "csv", "--sus", "20", "--pus", "2", "--side", "26",
        ])
        .unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("time,event,su,peer,outcome,v0,v1"));
        assert!(lines.next().is_some(), "no data rows: {out}");
    }

    #[test]
    fn trace_rejects_unknown_format() {
        let e = run(&["trace", "--format", "xml"]).unwrap_err();
        assert!(e.message.contains("xml"), "{e}");
    }

    #[test]
    fn run_rejects_unknown_flag() {
        let e = run(&["run", "--bogus", "1"]).unwrap_err();
        assert!(e.message.contains("unrecognized"), "{e}");
        assert_eq!(e.code, 2, "bad flags are usage errors");
    }

    #[test]
    fn run_rejects_bad_probability() {
        let e = run(&["run", "--pt", "1.5"]).unwrap_err();
        assert!(e.message.contains("probability"), "{e}");
    }

    #[test]
    fn bounds_reports_theorems() {
        let out = run(&["bounds", "--sus", "40", "--pus", "4", "--side", "36"]).unwrap();
        assert!(out.contains("Theorem 2"), "{out}");
        assert!(out.contains("kappa"), "{out}");
    }

    #[test]
    fn sweep_requires_panels() {
        assert!(run(&["sweep"]).is_err());
    }

    #[test]
    fn sweep_runs_one_tiny_panel() {
        let out = run(&["sweep", "c", "--reps", "1"]).unwrap();
        assert!(out.contains("fig6c"), "{out}");
        assert!(out.contains("ADDC delay"), "{out}");
    }

    #[test]
    fn run_with_map_renders_roles() {
        let out = run(&["run", "--map", "--sus", "40", "--pus", "4", "--side", "36"]).unwrap();
        assert!(out.contains("legend"), "{out}");
        assert!(out.contains('B'), "{out}");
    }

    #[test]
    fn algo_parse_errors_are_reported() {
        let e = run(&["run", "--algo", "magic"]).unwrap_err();
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn run_with_check_invariants_reports_clean_oracle() {
        let common = ["--sus", "40", "--pus", "4", "--side", "36", "--seed", "3"];
        let mut plain = vec!["run"];
        plain.extend_from_slice(&common);
        let mut checked = plain.clone();
        checked.push("--check-invariants");
        let checked_out = run(&checked).unwrap();
        assert!(
            checked_out.contains("invariants: ok ("),
            "oracle verdict missing: {checked_out}"
        );
        // Apart from the verdict line, the checked run reports the exact
        // same results — the oracle must not perturb the simulation.
        let stripped: String = checked_out
            .lines()
            .filter(|l| !l.contains("invariants:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(run(&plain).unwrap(), stripped);
    }

    #[test]
    fn run_with_truncated_interference_matches_exact() {
        let common = ["--sus", "40", "--pus", "4", "--side", "36", "--seed", "3"];
        let mut exact = vec!["run"];
        exact.extend_from_slice(&common);
        let mut truncated = exact.clone();
        truncated.extend_from_slice(&["--interference", "truncated:0.1"]);
        assert_eq!(run(&exact).unwrap(), run(&truncated).unwrap());
    }

    #[test]
    fn interference_flag_rejects_garbage() {
        let e = run(&["run", "--interference", "psychic"]).unwrap_err();
        assert!(e.message.contains("psychic"), "{e}");
        let e = run(&["run", "--interference", "truncated:1.5"]).unwrap_err();
        assert!(e.message.contains("(0, 1)"), "{e}");
    }

    #[test]
    fn injected_fairness_skip_is_a_runtime_failure() {
        let e = run(&[
            "run",
            "--check-invariants",
            "--inject-fairness-skip",
            "--sus",
            "40",
            "--pus",
            "4",
            "--side",
            "36",
            "--seed",
            "3",
        ])
        .unwrap_err();
        assert_eq!(e.code, 1, "violations are runtime failures, not usage");
        assert!(!e.show_usage);
        assert!(e.message.contains("invariant violation"), "{e}");
        assert!(e.message.contains("scheduler-hygiene"), "{e}");
    }

    #[test]
    fn inject_flag_requires_check_invariants() {
        let e = run(&["run", "--inject-fairness-skip"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--check-invariants"), "{e}");
    }

    #[test]
    fn fault_free_flags_leave_the_output_byte_identical() {
        let common = ["--sus", "40", "--pus", "4", "--side", "36", "--seed", "3"];
        let mut plain = vec!["run"];
        plain.extend_from_slice(&common);
        let mut preset_none = plain.clone();
        preset_none.extend_from_slice(&["--fault-preset", "none"]);
        assert_eq!(run(&plain).unwrap(), run(&preset_none).unwrap());
    }

    #[test]
    fn empty_plan_file_matches_the_fault_free_report() {
        // ISSUE acceptance at the CLI level: an explicit empty plan runs
        // the identical simulation; only the fault-summary lines differ.
        let path = std::env::temp_dir().join("crn_cli_empty_plan.json");
        std::fs::write(&path, r#"{"events":[]}"#).unwrap();
        let common = ["--sus", "40", "--pus", "4", "--side", "36", "--seed", "3"];
        let mut plain = vec!["run"];
        plain.extend_from_slice(&common);
        let mut with_plan = plain.clone();
        let path_s = path.to_str().unwrap();
        with_plan.extend_from_slice(&["--faults", path_s]);
        let with_out = run(&with_plan).unwrap();
        assert!(with_out.contains("faults [plan(0 events)]"), "{with_out}");
        assert!(with_out.contains("delivery ratio 1.000"), "{with_out}");
        let stripped: String = with_out
            .lines()
            .filter(|l| !l.contains("faults [") && !l.contains("healing:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(run(&plain).unwrap(), stripped);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn churn_preset_runs_clean_under_the_oracle_and_reports_faults() {
        let out = run(&[
            "run",
            "--check-invariants",
            "--fault-preset",
            "churn:10",
            "--sus",
            "40",
            "--pus",
            "4",
            "--side",
            "36",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("faults [churn:10]"), "{out}");
        assert!(out.contains("healing: reparents"), "{out}");
        assert!(out.contains("invariants: ok ("), "{out}");
    }

    #[test]
    fn plan_file_crash_is_reported() {
        let path = std::env::temp_dir().join("crn_cli_crash_plan.json");
        std::fs::write(
            &path,
            r#"{"events":[{"t":0.001,"kind":"crash","su":1},{"t":0.5,"kind":"recover","su":1}]}"#,
        )
        .unwrap();
        let out = run(&[
            "run",
            "--check-invariants",
            "--faults",
            path.to_str().unwrap(),
            "--sus",
            "40",
            "--pus",
            "4",
            "--side",
            "36",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("faults [plan(2 events)]"), "{out}");
        assert!(out.contains("invariants: ok ("), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_flag_misuse_is_a_usage_error() {
        let e = run(&["run", "--faults", "x.json", "--fault-preset", "churn:1"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("mutually exclusive"), "{e}");
        let e = run(&["run", "--fault-preset", "meteor"]).unwrap_err();
        assert!(e.message.contains("meteor"), "{e}");
        let e = run(&["run", "--faults", "/nonexistent/plan.json"]).unwrap_err();
        assert!(e.message.contains("cannot read"), "{e}");
    }

    #[test]
    fn malformed_plan_files_are_rejected_with_the_path() {
        let path = std::env::temp_dir().join("crn_cli_bad_plan.json");
        for bad in ["not json", r#"{"events":[{"t":0.0,"kind":"zap"}]}"#] {
            std::fs::write(&path, bad).unwrap();
            let e = run(&["run", "--faults", path.to_str().unwrap()]).unwrap_err();
            assert_eq!(e.code, 2, "{bad}");
            assert!(e.message.contains("crn_cli_bad_plan"), "{bad}: {e}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_runs_the_churn_figure() {
        let out = run(&["sweep", "churn", "--reps", "1"]).unwrap();
        assert!(out.contains("## churn"), "{out}");
        assert!(out.contains("ADDC delay"), "{out}");
    }

    #[test]
    fn histogram_percentiles_walk_the_cumulative_counts() {
        let buckets = vec![(Some(1.0), 50u64), (Some(5.0), 45), (None, 5)];
        assert_eq!(histogram_percentile(&buckets, 0.50), Some(Some(1.0)));
        assert_eq!(histogram_percentile(&buckets, 0.95), Some(Some(5.0)));
        assert_eq!(histogram_percentile(&buckets, 0.99), Some(None));
        assert_eq!(histogram_percentile(&[], 0.5), None);
        assert_eq!(histogram_percentile(&[(Some(1.0), 0)], 0.5), None);
        // A single sample is every percentile.
        let one = vec![(Some(1.0), 0u64), (Some(5.0), 1)];
        assert_eq!(histogram_percentile(&one, 0.50), Some(Some(5.0)));
        assert_eq!(histogram_percentile(&one, 0.99), Some(Some(5.0)));
    }

    #[test]
    fn stats_summary_renders_percentiles_from_a_response() {
        let response: Json = r#"{"v":1,"ok":true,"stats":{"latency_ms":[
            {"le_ms":1.0,"count":90},{"le_ms":5.0,"count":5},{"le_ms":null,"count":5}
        ]}}"#
            .parse()
            .unwrap();
        let summary = stats_latency_summary(&response).unwrap();
        assert_eq!(
            summary,
            "latency over 100 served: p50 <=1ms p95 <=5ms p99 >5ms\n"
        );
        let empty: Json = r#"{"v":1,"ok":true,"stats":{"latency_ms":[
            {"le_ms":1.0,"count":0},{"le_ms":null,"count":0}
        ]}}"#
            .parse()
            .unwrap();
        assert_eq!(
            stats_latency_summary(&empty).unwrap(),
            "latency: no served requests yet\n"
        );
        let no_hist: Json = r#"{"v":1,"ok":true}"#.parse().unwrap();
        assert!(stats_latency_summary(&no_hist).is_none());
    }

    #[test]
    fn stats_summary_renders_store_counters() {
        let response: Json = r#"{"v":1,"ok":true,"stats":{"store":{
            "configured":true,"len":12,"store_bytes":3456,
            "store_hits":7,"store_evictions":2,"misses":5,"writes":12,"repaired":0
        }}}"#
            .parse()
            .unwrap();
        assert_eq!(
            stats_store_summary(&response).unwrap(),
            "store: 12 results, 3456 bytes; 7 hits, 2 evictions\n"
        );
        let off: Json = r#"{"v":1,"ok":true,"stats":{"store":{"configured":false}}}"#
            .parse()
            .unwrap();
        assert!(stats_store_summary(&off).is_none());
        let absent: Json = r#"{"v":1,"ok":true,"stats":{}}"#.parse().unwrap();
        assert!(stats_store_summary(&absent).is_none());
    }

    #[test]
    fn stats_summary_renders_per_worker_rows() {
        let response: Json = r#"{"v":1,"ok":true,"stats":{"cluster":{
            "workers":[
                {"name":"w0","alive":true,"dispatched":9,"completed":9,"failed":0},
                {"name":"w1","alive":false,"dispatched":4,"completed":3,"failed":0}
            ],
            "workers_lost":1,"redispatches":1,"local_fallbacks":0
        }}}"#
            .parse()
            .unwrap();
        let summary = stats_cluster_summary(&response).unwrap();
        assert!(
            summary.starts_with("cluster: 2 workers (1 lost), 1 redispatches, 0 local fallbacks\n"),
            "{summary}"
        );
        assert!(
            summary.contains("w0 [alive]: dispatched 9, completed 9, failed 0"),
            "{summary}"
        );
        assert!(
            summary.contains("w1 [lost]: dispatched 4, completed 3, failed 0"),
            "{summary}"
        );
        let plain: Json = r#"{"v":1,"ok":true,"stats":{}}"#.parse().unwrap();
        assert!(stats_cluster_summary(&plain).is_none());
    }

    #[test]
    fn serve_config_parses_with_defaults_and_flags() {
        let mut args = Vec::new();
        let cfg = parse_serve_config(&mut args).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!((cfg.workers, cfg.queue_cap, cfg.cache_cap), (4, 64, 1024));
        assert_eq!(cfg.topo_cache_cap, 64);

        assert!(cfg.store.is_none(), "no store unless --store is given");

        let mut args: Vec<String> = [
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "2",
            "--queue-cap",
            "5",
            "--cache-cap",
            "10",
            "--topo-cache-cap",
            "3",
            "--store",
            "/tmp/crn-store",
            "--store-max-mb",
            "7",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let cfg = parse_serve_config(&mut args).unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!((cfg.workers, cfg.queue_cap, cfg.cache_cap), (2, 5, 10));
        assert_eq!(cfg.topo_cache_cap, 3);
        let store = cfg.store.expect("store configured");
        assert_eq!(store.dir, std::path::PathBuf::from("/tmp/crn-store"));
        assert_eq!(store.max_bytes, 7 * 1024 * 1024);
        assert!(args.is_empty(), "all flags consumed");

        let mut args: Vec<String> = vec!["--workers".into(), "0".into()];
        assert!(parse_serve_config(&mut args).is_err());

        // --store-max-mb without --store is a usage error.
        let mut args: Vec<String> = vec!["--store-max-mb".into(), "5".into()];
        assert!(parse_serve_config(&mut args).is_err());
    }

    #[test]
    fn cluster_config_parses_with_defaults_and_flags() {
        let mut args = Vec::new();
        let (cfg, workers) = parse_cluster_config(&mut args).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!((cfg.queue_cap, cfg.cache_cap), (256, 1024));
        assert_eq!(cfg.job_timeout_ms, 30_000);
        assert!(cfg.store.is_none());
        assert_eq!(workers, 2, "default fleet size");

        let mut args: Vec<String> = [
            "--workers",
            "3",
            "--job-timeout-ms",
            "500",
            "--store",
            "/tmp/fleet",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let (cfg, workers) = parse_cluster_config(&mut args).unwrap();
        assert_eq!(workers, 3);
        assert_eq!(cfg.job_timeout_ms, 500);
        // The coordinator gets its own store subdirectory so worker
        // processes can share the parent --store DIR.
        assert_eq!(
            cfg.store.expect("store").dir,
            std::path::PathBuf::from("/tmp/fleet/coordinator")
        );
        assert!(args.is_empty(), "all flags consumed");
    }

    #[test]
    fn worker_config_parses_with_defaults_and_flags() {
        let mut args = Vec::new();
        let cfg = parse_worker_config("127.0.0.1:9000".into(), &mut args).unwrap();
        assert_eq!(cfg.coordinator, "127.0.0.1:9000");
        assert!(cfg.name.starts_with("worker-"), "pid-derived name");
        assert_eq!(cfg.threads, 2);

        let mut args: Vec<String> = ["--name", "w7", "--threads", "1", "--store", "/tmp/w7"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let cfg = parse_worker_config("h:1".into(), &mut args).unwrap();
        assert_eq!(cfg.name, "w7");
        assert_eq!(cfg.threads, 1);
        assert_eq!(
            cfg.store.expect("store").dir,
            std::path::PathBuf::from("/tmp/w7")
        );
        assert!(args.is_empty(), "all flags consumed");

        let mut args: Vec<String> = vec!["--threads".into(), "0".into()];
        assert!(parse_worker_config("h:1".into(), &mut args).is_err());
    }

    #[test]
    fn serve_mode_flags_are_mutually_exclusive() {
        let e = run(&["serve", "--coordinator", "--join", "127.0.0.1:1"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn submit_request_builder_emits_protocol_lines() {
        let build = |flags: &[&str]| {
            let mut args: Vec<String> = flags.iter().map(|s| (*s).to_owned()).collect();
            let line = build_submit_request(&mut args).unwrap();
            assert!(args.is_empty(), "unconsumed: {args:?}");
            line
        };
        // Control commands.
        assert_eq!(build(&["--stats"]), r#"{"v":1,"cmd":"stats"}"#);
        assert_eq!(build(&["--shutdown"]), r#"{"v":1,"cmd":"shutdown"}"#);
        // A run request parses under the server's own protocol parser.
        let line = build(&[
            "--sus",
            "40",
            "--seed",
            "7",
            "--algo",
            "coolest",
            "--timeout-ms",
            "500",
        ]);
        let req = crn_serve::protocol::parse_request(&line).unwrap();
        let crn_serve::protocol::Request::Run { spec, timeout_ms } = req else {
            panic!("expected run request: {line}");
        };
        assert_eq!(spec.params.num_sus, 40);
        assert_eq!(spec.params.seed, 7);
        assert_eq!(spec.algorithm, CollectionAlgorithm::Coolest);
        assert_eq!(timeout_ms, Some(500));
        // Sweep form.
        let line = build(&["--seed-count", "3", "--seed-start", "5"]);
        let req = crn_serve::protocol::parse_request(&line).unwrap();
        let crn_serve::protocol::Request::Sweep { seeds, stream, .. } = req else {
            panic!("expected sweep request: {line}");
        };
        assert_eq!(seeds, vec![5, 6, 7]);
        assert!(!stream, "streaming is opt-in");
        // Streamed sweep form.
        let line = build(&["--seed-count", "2", "--stream"]);
        let req = crn_serve::protocol::parse_request(&line).unwrap();
        let crn_serve::protocol::Request::Sweep { stream, .. } = req else {
            panic!("expected sweep request: {line}");
        };
        assert!(stream, "--stream sets the protocol flag");
        // --stream without a sweep is a usage error.
        let mut args: Vec<String> = vec!["--stream".into()];
        assert!(build_submit_request(&mut args).is_err());
        // --raw passes through verbatim.
        let mut args: Vec<String> = vec!["--raw".into(), r#"{"v":1,"cmd":"status"}"#.into()];
        assert_eq!(
            build_submit_request(&mut args).unwrap(),
            r#"{"v":1,"cmd":"status"}"#
        );
        // Bad algorithms are rejected locally.
        let mut args: Vec<String> = vec!["--algo".into(), "magic".into()];
        assert!(build_submit_request(&mut args).is_err());
    }

    #[test]
    fn submit_requires_addr() {
        let e = run(&["submit", "--stats"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--addr"), "{e}");
    }

    #[test]
    fn submit_to_dead_server_is_a_runtime_failure() {
        // Port 1 on loopback is essentially never listening.
        let e = run(&["submit", "--addr", "127.0.0.1:1", "--stats"]).unwrap_err();
        assert_eq!(e.code, 1, "connection failure is runtime, not usage");
        assert!(e.message.contains("cannot connect"), "{e}");
    }
}
