//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches of the ADDC reproduction.
//!
//! The binaries regenerate the paper's evaluation artifacts:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig4` | Fig. 4 (PCR closed forms, both constant variants) |
//! | `fig6` | Fig. 6 panels (a)–(f), ADDC vs Coolest |
//! | `validate-bounds` | Theorem 1 / Theorem 2 numeric validation |
//! | `ablations` | PCR-constants, fairness, routing, PU-model ablations |
//! | `bench_sim` | `results/BENCH_sim.json` — dense-vs-sparse interference scaling |
//!
//! Run e.g. `cargo run -p crn-bench --release --bin fig6 -- all --preset
//! scaled`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;

use std::io::Write as _;
use std::time::Instant;

/// Extracts `--flag value` from an argument list, returning the remaining
/// positional arguments and the flag's value (if present).
///
/// # Panics
///
/// Panics if the flag is present without a following value.
#[must_use]
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        assert!(i + 1 < args.len(), "flag {flag} requires a value");
        let value = args.remove(i + 1);
        args.remove(i);
        Some(value)
    } else {
        None
    }
}

/// A stderr progress printer for long sweeps: `label: done/total (rate)`.
#[derive(Debug)]
pub struct Progress {
    label: String,
    started: Instant,
}

impl Progress {
    /// Starts a progress tracker.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            started: Instant::now(),
        }
    }

    /// Reports `done` of `total` complete.
    pub fn report(&self, done: usize, total: usize) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        eprint!(
            "\r{}: {done}/{total} ({rate:.2} runs/s, {elapsed:.0}s elapsed)   ",
            self.label
        );
        let _ = std::io::stderr().flush();
        if done == total {
            eprintln!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flag_extracts_and_removes() {
        let mut args = vec!["a".into(), "--preset".into(), "tiny".into(), "b".into()];
        assert_eq!(take_flag(&mut args, "--preset"), Some("tiny".into()));
        assert_eq!(args, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn take_flag_absent_is_none() {
        let mut args = vec!["a".into()];
        assert_eq!(take_flag(&mut args, "--preset"), None);
        assert_eq!(args.len(), 1);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn take_flag_without_value_panics() {
        let mut args = vec!["--preset".into()];
        let _ = take_flag(&mut args, "--preset");
    }
}
