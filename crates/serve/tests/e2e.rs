//! End-to-end tests for the simulation service: a real server on an
//! ephemeral port, real TCP clients, real simulations (small networks so
//! the suite stays fast).

use crn_serve::client::Client;
use crn_serve::server::{ServeConfig, Server, MAX_REQUEST_LINE_BYTES};
use crn_serve::store::StoreConfig;
use crn_workloads::json::Json;
use std::time::Duration;

/// A small-but-real run request: ~60 SUs finishes in well under a second.
fn small_run(seed: u64) -> String {
    format!(r#"{{"v":1,"cmd":"run","params":{{"sus":50,"pus":8,"side":42.0,"seed":{seed}}}}}"#)
}

fn start(workers: usize, queue_cap: usize, cache_cap: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        cache_cap,
        topo_cache_cap: 64,
        store: None,
    })
    .expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    let client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set timeout");
    client
}

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_kind(response: &Json) -> Option<&str> {
    response.get("error")?.get("kind")?.as_str()
}

#[test]
fn run_round_trip_and_cache_hit_via_stats() {
    let server = start(2, 8, 64);
    let mut client = connect(&server);

    let first = client.request_line(&small_run(7)).unwrap();
    assert!(ok(&first), "first run failed: {first}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let report = first.get("report").expect("report present");
    assert_eq!(
        report.get("packets_delivered").and_then(Json::as_u64),
        Some(50),
        "all packets collected: {report}"
    );

    // The identical request must be answered from the cache…
    let second = client.request_line(&small_run(7)).unwrap();
    assert!(ok(&second), "cached run failed: {second}");
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        second.get("key").and_then(Json::as_str),
        first.get("key").and_then(Json::as_str),
        "same spec, same content address"
    );

    // …and the stats must say so.
    let stats = client.stats().unwrap();
    let counters = stats.get("counters").expect("counters");
    assert_eq!(counters.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("computed").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("served").and_then(Json::as_u64), Some(2));

    // A different seed is a different content address.
    let third = client.request_line(&small_run(8)).unwrap();
    assert!(ok(&third));
    assert_eq!(third.get("cached").and_then(Json::as_bool), Some(false));
    assert_ne!(
        third.get("key").and_then(Json::as_str),
        first.get("key").and_then(Json::as_str)
    );

    client.shutdown().unwrap();
    server.wait();
}

/// The ISSUE acceptance test: 4 workers, queue cap 8, a burst of 32
/// distinct requests from concurrent connections. Every response must be
/// either `ok` or a clean `429 overloaded` — never a hang, never a
/// malformed line — and at least one of each must occur (the queue can't
/// hold 32, and admitted work must finish).
#[test]
fn burst_of_32_yields_only_ok_or_overloaded() {
    let server = start(4, 8, 64);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..32u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("set timeout");
                client.request_line(&small_run(i)).expect("response line")
            })
        })
        .collect();
    let responses: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut ok_count = 0;
    let mut overloaded = 0;
    for r in &responses {
        if ok(r) {
            ok_count += 1;
        } else {
            assert_eq!(
                error_kind(r),
                Some("overloaded"),
                "unexpected failure mode: {r}"
            );
            assert_eq!(
                r.get("error").unwrap().get("code").and_then(Json::as_u64),
                Some(429)
            );
            overloaded += 1;
        }
    }
    assert_eq!(ok_count + overloaded, 32);
    assert!(
        ok_count >= 8,
        "at least workers+queue requests must be admitted, got {ok_count}"
    );
    assert!(
        overloaded > 0,
        "32 concurrent distinct requests cannot all fit in workers=4 + queue=8"
    );

    // Admission-control rejections must show up in the counters.
    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    let counters = stats.get("counters").expect("counters");
    assert_eq!(
        counters.get("rejected").and_then(Json::as_u64),
        Some(overloaded)
    );
    client.shutdown().unwrap();
    server.wait();
}

/// Identical concurrent requests coalesce onto one computation: the
/// follower does not consume a queue slot and the simulation runs once.
#[test]
fn identical_concurrent_requests_coalesce() {
    let server = start(1, 4, 64);
    let addr = server.local_addr();

    // Many clients ask for the same spec at once, racing the lone worker.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("set timeout");
                client.request_line(&small_run(3)).expect("response line")
            })
        })
        .collect();
    let responses: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &responses {
        assert!(ok(r), "coalesced request failed: {r}");
    }

    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    let counters = stats.get("counters").expect("counters");
    let computed = counters.get("computed").and_then(Json::as_u64).unwrap();
    let coalesced = counters.get("coalesced").and_then(Json::as_u64).unwrap();
    let hits = counters.get("cache_hits").and_then(Json::as_u64).unwrap();
    assert_eq!(computed, 1, "one simulation serves all identical requests");
    assert_eq!(coalesced + hits, 5, "the other five piggybacked: {stats}");
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn deadline_miss_reports_timed_out_with_repro_then_cache_recovers() {
    let server = start(1, 4, 64);
    let mut client = connect(&server);

    // A 170-SU network takes much longer than 1ms.
    let slow =
        r#"{"v":1,"cmd":"run","params":{"sus":170,"pus":12,"side":75.0,"seed":5},"timeout_ms":1}"#;
    let response = client.request_line(slow).unwrap();
    assert!(!ok(&response), "must time out: {response}");
    assert_eq!(error_kind(&response), Some("timed_out"));
    let message = response
        .get("error")
        .unwrap()
        .get("message")
        .and_then(Json::as_str)
        .unwrap();
    assert!(
        message.contains("crn run") && message.contains("--seed 5"),
        "timeout must carry a repro line: {message}"
    );

    // The worker still finishes and caches; an untimed retry is a hit
    // (or at worst coalesces onto the still-running job).
    let retry = r#"{"v":1,"cmd":"run","params":{"sus":170,"pus":12,"side":75.0,"seed":5}}"#;
    let response = client.request_line(retry).unwrap();
    assert!(ok(&response), "retry failed: {response}");

    let stats = client.stats().unwrap();
    let counters = stats.get("counters").expect("counters");
    assert_eq!(counters.get("timed_out").and_then(Json::as_u64), Some(1));
    client.shutdown().unwrap();
    server.wait();
}

/// A panicking simulation fails its own request with `worker_panicked`
/// but leaves the server fully operational.
#[test]
fn worker_panic_is_isolated() {
    let server = start(2, 8, 64);
    let mut client = connect(&server);

    let poisoned = r#"{"v":1,"cmd":"run","params":{"sus":50,"pus":8,"side":42.0,"seed":1},"inject_panic":true}"#;
    let response = client.request_line(poisoned).unwrap();
    assert!(!ok(&response));
    assert_eq!(error_kind(&response), Some("worker_panicked"));
    assert_eq!(
        response
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_u64),
        Some(500)
    );

    // The same connection and the same server keep working.
    let response = client.request_line(&small_run(1)).unwrap();
    assert!(
        ok(&response),
        "server must survive a worker panic: {response}"
    );
    let stats = client.stats().unwrap();
    assert_eq!(
        stats
            .get("counters")
            .unwrap()
            .get("failed")
            .and_then(Json::as_u64),
        Some(1)
    );
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn sweep_batches_seeds_and_second_pass_is_fully_cached() {
    let server = start(2, 8, 64);
    let mut client = connect(&server);

    let sweep = r#"{"v":1,"cmd":"sweep","params":{"sus":50,"pus":8,"side":42.0},"seed_start":0,"seed_count":4}"#;
    let first = client.request_line(sweep).unwrap();
    assert!(ok(&first), "sweep failed: {first}");
    assert_eq!(first.get("points").and_then(Json::as_u64), Some(4));
    assert_eq!(first.get("ok_points").and_then(Json::as_u64), Some(4));
    assert_eq!(first.get("cached_points").and_then(Json::as_u64), Some(0));
    let results = first.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(results.len(), 4);
    // Per-seed entries embed exporter-shaped records.
    let record = results[0].get("record").expect("record");
    assert_eq!(record.get("figure").and_then(Json::as_str), Some("serve"));
    assert_eq!(record.get("x_name").and_then(Json::as_str), Some("seed"));
    assert_eq!(record.get("x").and_then(Json::as_f64), Some(0.0));
    assert_eq!(record.get("finished").and_then(Json::as_bool), Some(true));

    // Same sweep again: every point served from cache.
    let second = client.request_line(sweep).unwrap();
    assert!(ok(&second));
    assert_eq!(second.get("cached_points").and_then(Json::as_u64), Some(4));

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn check_invariants_runs_clean_through_the_service() {
    let server = start(1, 4, 64);
    let mut client = connect(&server);
    let checked = r#"{"v":1,"cmd":"run","params":{"sus":40,"pus":6,"side":38.0,"seed":2},"check_invariants":true}"#;
    let response = client.request_line(checked).unwrap();
    assert!(ok(&response), "oracle-checked run failed: {response}");
    // Checked and unchecked runs have distinct content addresses.
    let unchecked = r#"{"v":1,"cmd":"run","params":{"sus":40,"pus":6,"side":38.0,"seed":2}}"#;
    let other = client.request_line(unchecked).unwrap();
    assert!(ok(&other));
    assert_ne!(
        response.get("key").and_then(Json::as_str),
        other.get("key").and_then(Json::as_str)
    );
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn protocol_violations_get_typed_errors_not_disconnects() {
    let server = start(1, 4, 64);
    let mut client = connect(&server);

    let bad_json = client.request_line("{this is not json").unwrap();
    assert_eq!(error_kind(&bad_json), Some("bad_request"));

    let bad_version = client.request_line(r#"{"v":99,"cmd":"status"}"#).unwrap();
    assert_eq!(error_kind(&bad_version), Some("unsupported_version"));
    assert_eq!(
        bad_version
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_u64),
        Some(400)
    );

    let unknown_cmd = client.request_line(r#"{"v":1,"cmd":"teleport"}"#).unwrap();
    assert_eq!(error_kind(&unknown_cmd), Some("bad_request"));

    // Connection is still usable afterwards.
    let status = client.request_line(r#"{"v":1,"cmd":"status"}"#).unwrap();
    assert!(ok(&status));
    assert_eq!(status.get("status").and_then(Json::as_str), Some("running"));

    let stats = client.stats().unwrap();
    assert_eq!(
        stats
            .get("counters")
            .unwrap()
            .get("bad_requests")
            .and_then(Json::as_u64),
        Some(3)
    );
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn graceful_shutdown_acknowledges_then_drains() {
    let server = start(2, 8, 16);
    let addr = server.local_addr();
    let mut client = connect(&server);
    let response = client.request_line(&small_run(11)).unwrap();
    assert!(ok(&response));

    let ack = client.shutdown().unwrap();
    assert!(ok(&ack), "shutdown must be acknowledged: {ack}");
    assert_eq!(ack.get("shutting_down").and_then(Json::as_bool), Some(true));

    // wait() returns the final counters once every thread has drained.
    let counters = server.wait();
    assert_eq!(counters.served, 1);
    assert_eq!(counters.computed, 1);

    // The listener is gone once wait() returns.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn stats_shape_is_complete() {
    let server = start(3, 5, 7);
    let mut client = connect(&server);
    client.request_line(&small_run(1)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("workers").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("queue_cap").and_then(Json::as_u64), Some(5));
    assert_eq!(stats.get("draining").and_then(Json::as_bool), Some(false));
    assert!(stats.get("uptime_s").and_then(Json::as_f64).unwrap() >= 0.0);
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("capacity").and_then(Json::as_u64), Some(7));
    assert_eq!(cache.get("insertions").and_then(Json::as_u64), Some(1));
    let topo = stats.get("topology_cache").expect("topology cache block");
    assert_eq!(topo.get("capacity").and_then(Json::as_u64), Some(64));
    assert_eq!(topo.get("insertions").and_then(Json::as_u64), Some(1));
    // The run above was sequential-mode, so the shard pool counters are
    // present but untouched.
    let shards = stats.get("shards").expect("shards block");
    assert_eq!(shards.get("runs").and_then(Json::as_u64), Some(0));
    assert_eq!(shards.get("shards_last").and_then(Json::as_u64), Some(0));
    assert_eq!(
        shards.get("windows_committed").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        shards
            .get("boundary_events_mirrored")
            .and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        shards.get("max_window_skew").and_then(Json::as_u64),
        Some(0)
    );
    let hist = stats.get("latency_ms").and_then(Json::as_arr).unwrap();
    assert_eq!(hist.len(), 13, "12 finite buckets + overflow");
    let total: u64 = hist
        .iter()
        .map(|b| b.get("count").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(total, 1, "one served request, one histogram sample");
    assert!(hist[12].get("le_ms").unwrap().is_null(), "overflow bucket");
    client.shutdown().unwrap();
    server.wait();
}

/// The two-level-cache acceptance test: one cold point generates the
/// deployment, then a 50-point radio-axis sweep over the same deployment
/// re-customizes the cached topology for every computed point instead of
/// regenerating the world.
#[test]
fn radio_axis_sweep_reuses_one_cached_topology() {
    let server = start(2, 64, 256);
    let mut client = connect(&server);

    // Cold point: generates and publishes the topology.
    let cold = client.request_line(&small_run(11)).unwrap();
    assert!(ok(&cold), "cold run failed: {cold}");

    // 50 activity values at the same deployment seed: pure radio-side
    // changes, every point a distinct result-cache key.
    let values: Vec<String> = (1..=50)
        .map(|i| format!("{:.2}", 0.01 * f64::from(i)))
        .collect();
    let sweep = format!(
        r#"{{"v":1,"cmd":"sweep","params":{{"sus":50,"pus":8,"side":42.0,"seed":11}},"axis":{{"kind":"pt","values":[{}]}}}}"#,
        values.join(",")
    );
    let resp = client.request_line(&sweep).unwrap();
    assert!(ok(&resp), "axis sweep failed: {resp}");
    assert_eq!(resp.get("axis").and_then(Json::as_str), Some("p_t"));
    assert_eq!(resp.get("points").and_then(Json::as_u64), Some(50));
    assert_eq!(resp.get("ok_points").and_then(Json::as_u64), Some(50));
    let results = resp.get("results").and_then(Json::as_arr).unwrap();
    let record = results[0].get("record").expect("record");
    assert_eq!(record.get("x_name").and_then(Json::as_str), Some("p_t"));
    assert_eq!(record.get("x").and_then(Json::as_f64), Some(0.01));

    // Every computed sweep point re-customized the cached deployment.
    // (The point matching the cold run's own activity is a result-cache
    // hit and never reaches a worker, hence >= 49 rather than 50.)
    let stats = client.stats().unwrap();
    let counters = stats.get("counters").expect("counters");
    let hits = counters
        .get("topology_hits")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(hits >= 49, "expected >= 49 topology hits, got {hits}");
    let topo = stats.get("topology_cache").expect("topology cache block");
    assert_eq!(
        topo.get("len").and_then(Json::as_u64),
        Some(1),
        "one deployment shared by all 51 points"
    );

    client.shutdown().unwrap();
    server.wait();
}

/// The persistent tier end to end: results computed before a restart are
/// served from disk (`"cached":true`, `store_hits` counted) by a fresh
/// server on the same directory, with a byte-identical report.
#[test]
fn store_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("crn-serve-e2e-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Some(StoreConfig {
        dir: dir.clone(),
        max_bytes: 0,
    });
    let start_with_store = || {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 8,
            cache_cap: 64,
            topo_cache_cap: 64,
            store: store.clone(),
        })
        .expect("bind ephemeral port")
    };

    let server = start_with_store();
    let mut client = connect(&server);
    let first = client.request_line(&small_run(21)).unwrap();
    assert!(ok(&first), "cold run failed: {first}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let stats = client.stats().unwrap();
    let store_stats = stats.get("store").expect("store block");
    assert_eq!(
        store_stats.get("configured").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(store_stats.get("writes").and_then(Json::as_u64), Some(1));
    assert!(
        store_stats
            .get("store_bytes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    client.shutdown().unwrap();
    server.wait();

    // Fresh process state, same directory: the memory cache is empty but
    // the result is one disk read away.
    let server = start_with_store();
    let mut client = connect(&server);
    let warm = client.request_line(&small_run(21)).unwrap();
    assert!(ok(&warm), "store-served run failed: {warm}");
    assert_eq!(
        warm.get("cached").and_then(Json::as_bool),
        Some(true),
        "restart must serve from the persistent store: {warm}"
    );
    assert_eq!(
        warm.get("report"),
        first.get("report"),
        "disk round trip must be byte-identical"
    );
    let stats = client.stats().unwrap();
    let counters = stats.get("counters").expect("counters");
    assert_eq!(counters.get("store_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("computed").and_then(Json::as_u64), Some(0));
    client.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An over-length request line gets a typed `400 request_too_large` and
/// the connection keeps working for the next (sane) request.
#[test]
fn oversized_request_line_is_rejected_not_buffered() {
    let server = start(1, 4, 16);
    let mut client = connect(&server);

    let huge = format!(
        r#"{{"v":1,"cmd":"run","pad":"{}"}}"#,
        "x".repeat(MAX_REQUEST_LINE_BYTES + 1024)
    );
    let response = client.request_line(&huge).unwrap();
    assert_eq!(error_kind(&response), Some("request_too_large"));
    assert_eq!(
        response
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_u64),
        Some(400)
    );

    // The connection survives and the next request is served normally.
    let response = client.request_line(&small_run(2)).unwrap();
    assert!(ok(&response), "connection must survive: {response}");
    client.shutdown().unwrap();
    server.wait();
}

/// Streamed sweeps: every point arrives as its own in-order row line,
/// then a summary; rows carry the same records a buffered sweep returns.
#[test]
fn streamed_sweep_rows_match_the_buffered_sweep() {
    let server = start(2, 8, 64);
    let mut client = connect(&server);

    let buffered = client
        .request_line(
            r#"{"v":1,"cmd":"sweep","params":{"sus":50,"pus":8,"side":42.0},"seed_start":0,"seed_count":4}"#,
        )
        .unwrap();
    assert!(ok(&buffered), "buffered sweep failed: {buffered}");
    let buffered_records: Vec<String> = buffered
        .get("results")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|e| e.get("record").unwrap().to_string())
        .collect();

    let mut rows = Vec::new();
    let streamed = client
        .request_stream(
            r#"{"v":1,"cmd":"sweep","params":{"sus":50,"pus":8,"side":42.0},"seed_start":0,"seed_count":4,"stream":true}"#,
            |row| rows.push(row),
        )
        .unwrap();
    assert!(ok(&streamed), "streamed sweep failed: {streamed}");
    assert_eq!(streamed.get("streamed").and_then(Json::as_bool), Some(true));
    assert_eq!(streamed.get("points").and_then(Json::as_u64), Some(4));
    assert!(
        streamed.get("results").is_none(),
        "streamed summary must not re-buffer the rows"
    );
    assert_eq!(rows.len(), 4);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.get("seed").and_then(Json::as_u64),
            Some(i as u64),
            "rows must arrive in point order: {row}"
        );
        assert_eq!(
            row.get("record").unwrap().to_string(),
            buffered_records[i],
            "streamed and buffered records must be byte-identical"
        );
    }

    client.shutdown().unwrap();
    server.wait();
}

/// A cold sharded run executes on the shard pool (telemetry counts it);
/// the same spec re-requested sequentially is a pure cache hit — the
/// live proof that shard count never enters the cache key, which is
/// only sound because sharded reports are bit-identical.
#[test]
fn sharded_run_feeds_telemetry_and_shares_the_cache_line() {
    let server = start(2, 8, 16);
    let mut client = connect(&server);

    // Truncated interference builds the reverse index the plane needs;
    // the exact model would decline to shard and leave telemetry zero.
    let sharded = r#"{"v":1,"cmd":"run","params":{"sus":60,"pus":8,"side":42.0,"seed":9,"interference":"truncated:0.1"},"shards":2}"#;
    let cold = client.request_line(sharded).unwrap();
    assert!(ok(&cold), "cold sharded run failed: {cold}");

    let stats = client.stats().unwrap();
    let shards = stats.get("shards").expect("shards block");
    assert_eq!(shards.get("runs").and_then(Json::as_u64), Some(1));
    let last = shards.get("shards_last").and_then(Json::as_u64).unwrap();
    assert!(
        (1..=2).contains(&last),
        "expected 1..=2 actual shards, got {last}"
    );
    assert!(
        shards
            .get("windows_committed")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    // Same params, no shards field: identical cache key, so the worker
    // pool is never consulted again.
    let sequential = r#"{"v":1,"cmd":"run","params":{"sus":60,"pus":8,"side":42.0,"seed":9,"interference":"truncated:0.1"}}"#;
    let warm = client.request_line(sequential).unwrap();
    assert!(ok(&warm), "warm sequential run failed: {warm}");
    assert_eq!(
        warm.get("report"),
        cold.get("report"),
        "cached sharded report served verbatim to the sequential request"
    );
    let stats = client.stats().unwrap();
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    let shards = stats.get("shards").expect("shards block");
    assert_eq!(
        shards.get("runs").and_then(Json::as_u64),
        Some(1),
        "cache hit never reached the shard pool"
    );

    client.shutdown().unwrap();
    server.wait();
}
