//! The service runtime: accept loop, worker pool, bounded admission
//! queue, content-addressed result cache, and single-flight deduping.
//!
//! ## Life of a `run` request
//!
//! 1. The connection thread parses the line and computes the spec's
//!    [`RunSpec::cache_key`].
//! 2. Under one lock: cache hit → respond immediately (`"cached":true`);
//!    an identical request already queued or running → *coalesce* onto
//!    its job (no new work); otherwise admission control — if the bounded
//!    queue is full the request is rejected with `429 overloaded` right
//!    away, else a job is enqueued for the worker pool. When a persistent
//!    store is configured, a memory miss probes it (without the state
//!    lock) before any work is admitted: a disk hit is promoted into the
//!    memory cache and served as `"cached":true`.
//! 3. The connection thread blocks on the job's completion slot (with the
//!    request's `timeout_ms` deadline, if any). A deadline miss responds
//!    `408 timed_out` carrying a CLI repro string; the worker still
//!    finishes and populates the cache, so a retry is a hit.
//! 4. Workers run the simulation through the shared [`Executor`] under
//!    `catch_unwind`: a poisoned scenario fails that one request
//!    (`500 worker_panicked`), never the server. Successes are committed
//!    to the memory cache and (when configured) the on-disk store, so a
//!    warm cache survives restarts.
//!
//! ## The two-level cache
//!
//! The result cache keys on the full [`RunSpec::cache_key`]. Beneath it,
//! the [`Executor`]'s topology-tier cache keys generated scenarios on
//! [`RunSpec::topology_key`] alone: a request whose deployment matches a
//! cached scenario but whose radio parameters differ re-customizes the
//! cached world instead of regenerating it — bit-identical results at a
//! fraction of the cost (`topology_hits` in `stats` counts these).
//!
//! ## Sweeps
//!
//! A sweep resolves its points up front, then pushes them through the
//! submission ladder with a bounded **pipeline window**: up to `W` points
//! are in flight at once (so the worker pool actually runs a sweep in
//! parallel), while results are emitted strictly in point order — the
//! response byte stream is deterministic regardless of completion order.
//! With `"stream":true` each point is written immediately as its own
//! `{"v":1,"row":{...}}` line followed by a final summary response; the
//! window doubles as per-connection backpressure, because emission blocks
//! on the client's TCP receive window before more points are admitted.
//!
//! `shutdown` flips the draining flag: the listener stops accepting,
//! queued jobs drain, idle connections close, and [`Server::wait`]
//! returns the final stats snapshot.

use crate::cache::LruCache;
use crate::exec::{ExecError, Executor};
use crate::protocol::{
    error_response, parse_request, report_json, response_base, Request, RunSpec, ENGINE_VERSION,
    PROTOCOL_VERSION,
};
use crate::store::{ResultStore, StoreConfig};
use crate::sweep::{drive_sweep, PointOutcome};
use crate::ErrorKind;
use crn_core::CollectionOutcome;
use crn_workloads::export::record_jsonl;
use crn_workloads::json::Json;
use crn_workloads::{Axis, RunRecord};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper edges of the latency histogram buckets, in milliseconds; the
/// implicit last bucket is `+∞`.
pub const LATENCY_BUCKETS_MS: [f64; 12] = [
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
];

/// Upper bound on one accepted request line. A malformed or hostile
/// client that never sends a newline is answered `400 request_too_large`
/// once the bound trips, and the remainder of its line is discarded
/// without buffering — the connection stays usable. Generous relative to
/// real requests: a maximal sweep (4096 seeds) is under 100 KiB.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// How the service is sized; see the field docs for defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// available from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing simulations (min 1).
    pub workers: usize,
    /// Bounded request queue capacity; a full queue rejects new work with
    /// `429 overloaded` (admission control).
    pub queue_cap: usize,
    /// Result cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Topology-tier cache capacity in entries: generated scenarios
    /// keyed by deployment structure ([`RunSpec::topology_key`]) and
    /// re-customized in place for radio-only parameter changes
    /// (0 disables the tier; every request then regenerates).
    pub topo_cache_cap: usize,
    /// Optional persistent result store layered under the memory cache;
    /// `None` keeps the service memory-only (the pre-cluster behavior).
    pub store: Option<StoreConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 1024,
            topo_cache_cap: 64,
            store: None,
        }
    }
}

/// Aggregate request counters (all monotonically increasing).
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    /// Run/sweep-point requests received (control commands excluded).
    pub received: u64,
    /// Requests answered `ok` (from cache or computation).
    pub served: u64,
    /// Requests answered from the in-memory result cache.
    pub cache_hits: u64,
    /// Requests answered from the persistent store (memory miss promoted
    /// from disk).
    pub store_hits: u64,
    /// Requests that coalesced onto an identical in-flight computation.
    pub coalesced: u64,
    /// Simulations actually executed by the worker pool.
    pub computed: u64,
    /// Computations that re-customized a cached topology (same
    /// deployment, different radio parameters) instead of regenerating
    /// the scenario from scratch.
    pub topology_hits: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests whose deadline expired before the result was ready.
    pub timed_out: u64,
    /// Requests that failed (scenario error, invariant violation, panic).
    pub failed: u64,
    /// Lines that failed to parse as protocol requests (including
    /// over-length lines).
    pub bad_requests: u64,
}

type JobOutcome = Result<Arc<CollectionOutcome>, ExecError>;

/// One admitted computation; identical concurrent requests share it.
struct Job {
    spec: RunSpec,
    key: u64,
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl Job {
    fn new(spec: RunSpec, key: u64) -> Self {
        Self {
            spec,
            key,
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, outcome: JobOutcome) {
        let mut slot = self.slot.lock().expect("job slot poisoned");
        *slot = Some(outcome);
        self.done.notify_all();
    }

    /// Blocks until the job completes or `deadline` passes.
    fn wait(&self, deadline: Option<Instant>) -> Option<JobOutcome> {
        let mut slot = self.slot.lock().expect("job slot poisoned");
        loop {
            if let Some(out) = slot.as_ref() {
                return Some(out.clone());
            }
            match deadline {
                None => slot = self.done.wait(slot).expect("job slot poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _) = self
                        .done
                        .wait_timeout(slot, d - now)
                        .expect("job slot poisoned");
                    slot = guard;
                }
            }
        }
    }
}

struct State {
    queue: VecDeque<Arc<Job>>,
    in_flight: HashMap<u64, Arc<Job>>,
    running: usize,
    cache: LruCache<u64, Arc<CollectionOutcome>>,
    counters: Counters,
    latency_hist: [u64; LATENCY_BUCKETS_MS.len() + 1],
    draining: bool,
}

struct Shared {
    cfg: ServeConfig,
    started: Instant,
    state: Mutex<State>,
    work_ready: Condvar,
    exec: Executor,
    /// Persistent result tier; its own mutex so disk I/O never holds the
    /// scheduling state lock.
    store: Option<Mutex<ResultStore>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.state.lock().expect("state poisoned").draining
    }
}

/// What [`submit`] decided about a run request.
enum Submitted {
    Cached(Arc<CollectionOutcome>),
    Wait { job: Arc<Job>, coalesced: bool },
    Rejected,
    Draining,
}

/// A running simulation service.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts the service (listener + worker pool). Returns as
    /// soon as the socket is bound; the actual address (with the resolved
    /// ephemeral port) is [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures and store open/scan failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let store = match &cfg.store {
            None => None,
            Some(sc) => Some(Mutex::new(ResultStore::open(sc.clone())?)),
        };
        let exec = Executor::new(cfg.topo_cache_cap);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cfg.queue_cap),
                in_flight: HashMap::new(),
                running: 0,
                cache: LruCache::new(cfg.cache_cap),
                counters: Counters::default(),
                latency_hist: [0; LATENCY_BUCKETS_MS.len() + 1],
                draining: false,
            }),
            work_ready: Condvar::new(),
            started: Instant::now(),
            cfg,
            exec,
            store,
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("crn-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("crn-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers: worker_handles,
            connections,
        })
    }

    /// The bound address (resolves `--addr 127.0.0.1:0` to the actual
    /// ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful shutdown programmatically (equivalent to a
    /// `shutdown` protocol request): stop accepting, drain, exit.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the service has fully drained after a shutdown
    /// request, then returns the final counter snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a service thread itself panicked (worker panics are
    /// caught per-request and do **not** trip this).
    pub fn wait(mut self) -> Counters {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        loop {
            let handle = self.connections.lock().expect("connections poisoned").pop();
            match handle {
                Some(h) => h.join().expect("connection thread panicked"),
                None => break,
            }
        }
        let mut counters = self.shared.state.lock().expect("state poisoned").counters;
        counters.topology_hits = self.shared.exec.topology_hits();
        counters
    }
}

fn initiate_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    {
        let mut st = shared.state.lock().expect("state poisoned");
        if st.draining {
            return;
        }
        st.draining = true;
    }
    shared.work_ready.notify_all();
    // Unblock the accept loop: it checks the draining flag after every
    // accept, so poke it with a throwaway connection.
    drop(TcpStream::connect_timeout(
        &addr,
        Duration::from_millis(500),
    ));
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        let addr = listener.local_addr().expect("listener has an address");
        let Ok(handle) = std::thread::Builder::new()
            .name("crn-serve-conn".into())
            .spawn(move || connection_loop(stream, &shared, addr))
        else {
            continue;
        };
        connections
            .lock()
            .expect("connections poisoned")
            .push(handle);
    }
}

/// What one [`read_bounded_line`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line is in the buffer (trailing `\n` included).
    Line,
    /// Clean end of stream.
    Eof,
    /// The read timed out with no complete line; any partial data stays
    /// buffered for the next call.
    Idle,
    /// A line exceeded the byte bound; it has been fully discarded (the
    /// stream is positioned after its newline) and the buffer is empty.
    TooLarge,
    /// The stream failed.
    Closed,
}

/// Reads one newline-terminated line of at most `max` bytes.
///
/// Unlike [`BufRead::read_line`], an over-length line does not grow the
/// buffer without bound: once `max` is exceeded the accumulated prefix is
/// dropped and the rest of the line is *consumed and discarded*, keeping
/// the connection usable for the next request. `discarding` carries that
/// skip-state across [`LineRead::Idle`] returns (read timeouts), so the
/// caller must keep it alongside `line`.
pub fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    discarding: &mut bool,
    max: usize,
) -> LineRead {
    loop {
        let (consumed, found_newline) = {
            let buf = match reader.fill_buf() {
                Ok([]) => {
                    if *discarding {
                        // EOF mid-discard: nothing left to answer.
                        *discarding = false;
                        return LineRead::Eof;
                    }
                    // A trailing line without a newline is still a line
                    // (matches `read_line`); the next call sees EOF.
                    return if line.is_empty() {
                        LineRead::Eof
                    } else {
                        LineRead::Line
                    };
                }
                Ok(buf) => buf,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return LineRead::Idle;
                }
                Err(_) => return LineRead::Closed,
            };
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if !*discarding {
                        line.push_str(&String::from_utf8_lossy(&buf[..=i]));
                    }
                    (i + 1, true)
                }
                None => {
                    if !*discarding {
                        line.push_str(&String::from_utf8_lossy(buf));
                    }
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if !*discarding && line.len() > max {
            line.clear();
            *discarding = true;
        }
        if found_newline {
            if *discarding {
                *discarding = false;
                return LineRead::TooLarge;
            }
            return LineRead::Line;
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    // A finite read timeout lets idle connections notice the draining
    // flag and close, so `wait()` can join every connection thread.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut discarding = false;
    loop {
        match read_bounded_line(
            &mut reader,
            &mut line,
            &mut discarding,
            MAX_REQUEST_LINE_BYTES,
        ) {
            LineRead::Eof | LineRead::Closed => return,
            LineRead::Idle => {
                if shared.draining() {
                    return;
                }
            }
            LineRead::TooLarge => {
                shared
                    .state
                    .lock()
                    .expect("state poisoned")
                    .counters
                    .bad_requests += 1;
                let response = error_response(
                    ErrorKind::RequestTooLarge,
                    &format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                );
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            LineRead::Line => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let (response, shutdown) = handle_line(trimmed, shared, addr, &mut writer);
                    match response {
                        None => return, // streamed response hit a dead client
                        Some(response) => {
                            if write_line(&mut writer, &response).is_err() {
                                return;
                            }
                        }
                    }
                    if shutdown {
                        return;
                    }
                }
                line.clear();
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &Json) -> std::io::Result<()> {
    let payload = format!("{response}\n");
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Dispatches one request line; the bool asks the connection to close
/// (after a `shutdown` acknowledgment). `None` means a streamed response
/// failed mid-flight (dead client) and the connection should just close.
fn handle_line(
    line: &str,
    shared: &Arc<Shared>,
    addr: SocketAddr,
    writer: &mut TcpStream,
) -> (Option<Json>, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared
                .state
                .lock()
                .expect("state poisoned")
                .counters
                .bad_requests += 1;
            return (Some(error_response(e.kind, &e.message)), false);
        }
    };
    match request {
        Request::Status => (Some(status_json(shared)), false),
        Request::Stats => (Some(stats_json(shared)), false),
        Request::Shutdown => {
            initiate_shutdown(shared, addr);
            let mut o = response_base(true);
            o.set("shutting_down", Json::Bool(true));
            (Some(o), true)
        }
        Request::Run { spec, timeout_ms } => (Some(handle_run(shared, spec, timeout_ms)), false),
        Request::Sweep {
            spec,
            seeds,
            axis,
            timeout_ms,
            stream,
        } => {
            let sink = if stream { Some(&mut *writer) } else { None };
            (
                handle_sweep(shared, &spec, &seeds, axis.as_ref(), timeout_ms, sink),
                false,
            )
        }
    }
}

/// Admission decision for one run spec; see the module docs for the
/// cache → store → coalesce → enqueue/reject ladder.
fn submit(shared: &Arc<Shared>, spec: RunSpec) -> Submitted {
    let key = spec.cache_key();
    // First pass under the state lock: memory tiers only.
    {
        let mut st = shared.state.lock().expect("state poisoned");
        st.counters.received += 1;
        if st.draining {
            return Submitted::Draining;
        }
        // Injected panics must reach a worker (that is their point), so
        // they skip the caches on both ends.
        if !spec.inject_panic {
            if let Some(hit) = st.cache.get(&key) {
                st.counters.cache_hits += 1;
                return Submitted::Cached(hit);
            }
        }
        if let Some(job) = st.in_flight.get(&key).cloned() {
            st.counters.coalesced += 1;
            return Submitted::Wait {
                job,
                coalesced: true,
            };
        }
        if shared.store.is_none() || spec.inject_panic {
            return admit(shared, st, spec, key);
        }
    }
    // Memory miss with a store configured: probe the disk tier without
    // the state lock (store I/O must never serialize the scheduler).
    if let Some(store) = &shared.store {
        let promoted = store.lock().expect("store poisoned").get(key).map(Arc::new);
        if let Some(outcome) = promoted {
            let mut st = shared.state.lock().expect("state poisoned");
            st.counters.store_hits += 1;
            st.cache.insert(key, outcome.clone());
            return Submitted::Cached(outcome);
        }
    }
    // Disk miss: rerun the ladder — another thread may have raced the
    // same key into the cache or in-flight table while we were on disk.
    let mut st = shared.state.lock().expect("state poisoned");
    if st.draining {
        return Submitted::Draining;
    }
    if let Some(hit) = st.cache.get(&key) {
        st.counters.cache_hits += 1;
        return Submitted::Cached(hit);
    }
    if let Some(job) = st.in_flight.get(&key).cloned() {
        st.counters.coalesced += 1;
        return Submitted::Wait {
            job,
            coalesced: true,
        };
    }
    admit(shared, st, spec, key)
}

/// The enqueue/reject tail of the submission ladder (state lock held).
fn admit(
    shared: &Arc<Shared>,
    mut st: std::sync::MutexGuard<'_, State>,
    spec: RunSpec,
    key: u64,
) -> Submitted {
    if st.queue.len() >= shared.cfg.queue_cap {
        st.counters.rejected += 1;
        return Submitted::Rejected;
    }
    let job = Arc::new(Job::new(spec, key));
    st.in_flight.insert(key, job.clone());
    st.queue.push_back(job.clone());
    drop(st);
    shared.work_ready.notify_one();
    Submitted::Wait {
        job,
        coalesced: false,
    }
}

/// How one run/sweep-point request resolved.
enum PointResult {
    Ok {
        outcome: Arc<CollectionOutcome>,
        cached: bool,
        coalesced: bool,
        latency_ms: f64,
    },
    /// A complete error response object, ready to send.
    Err(Json),
}

/// A submitted point whose result may not be ready yet — the sweep
/// pipeline holds a window of these.
enum PendingPoint {
    /// Resolved at submission time (cache hit, rejection, draining).
    Ready(PointResult),
    /// Waiting on a worker.
    Wait {
        job: Arc<Job>,
        coalesced: bool,
        submitted: Instant,
        repro: String,
    },
}

/// The submission half of serving a point: runs the cache → store →
/// coalesce → admit ladder and returns either an immediate result or a
/// pending job to wait on.
fn submit_point(shared: &Arc<Shared>, spec: RunSpec) -> PendingPoint {
    let submitted = Instant::now();
    let repro = spec.repro();
    match submit(shared, spec) {
        Submitted::Draining => PendingPoint::Ready(PointResult::Err(error_response(
            ErrorKind::Draining,
            "server is shutting down",
        ))),
        Submitted::Rejected => PendingPoint::Ready(PointResult::Err(error_response(
            ErrorKind::Overloaded,
            &format!(
                "request queue full ({} pending); retry later",
                shared.cfg.queue_cap
            ),
        ))),
        Submitted::Cached(outcome) => {
            PendingPoint::Ready(ok_result(shared, outcome, true, false, submitted))
        }
        Submitted::Wait { job, coalesced } => PendingPoint::Wait {
            job,
            coalesced,
            submitted,
            repro,
        },
    }
}

/// The wait half: blocks until the point resolves or its deadline
/// (measured from submission) expires, maintaining the
/// served/timed-out/failed counters and the latency histogram.
fn finish_point(shared: &Arc<Shared>, point: PendingPoint, timeout_ms: Option<u64>) -> PointResult {
    let PendingPoint::Wait {
        job,
        coalesced,
        submitted,
        repro,
    } = point
    else {
        let PendingPoint::Ready(result) = point else {
            unreachable!()
        };
        return result;
    };
    let deadline = timeout_ms.map(|ms| submitted + Duration::from_millis(ms));
    match job.wait(deadline) {
        None => {
            shared
                .state
                .lock()
                .expect("state poisoned")
                .counters
                .timed_out += 1;
            PointResult::Err(error_response(
                ErrorKind::TimedOut,
                &format!(
                    "deadline of {}ms expired; repro: {repro}",
                    timeout_ms.unwrap_or(0)
                ),
            ))
        }
        Some(Err(e)) => {
            shared.state.lock().expect("state poisoned").counters.failed += 1;
            PointResult::Err(error_response(
                e.kind,
                &format!("{}; repro: {repro}", e.message),
            ))
        }
        Some(Ok(outcome)) => ok_result(shared, outcome, false, coalesced, submitted),
    }
}

/// Success bookkeeping shared by the cached and computed paths.
fn ok_result(
    shared: &Arc<Shared>,
    outcome: Arc<CollectionOutcome>,
    cached: bool,
    coalesced: bool,
    submitted: Instant,
) -> PointResult {
    let latency_ms = submitted.elapsed().as_secs_f64() * 1e3;
    {
        let mut st = shared.state.lock().expect("state poisoned");
        st.counters.served += 1;
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&le| latency_ms <= le)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        st.latency_hist[bucket] += 1;
    }
    PointResult::Ok {
        outcome,
        cached,
        coalesced,
        latency_ms,
    }
}

/// Serves one point end to end (used by the `run` path; sweeps pipeline
/// the two halves instead).
fn run_point(shared: &Arc<Shared>, spec: RunSpec, timeout_ms: Option<u64>) -> PointResult {
    finish_point(shared, submit_point(shared, spec), timeout_ms)
}

/// Serves one run request end to end, returning the response line.
fn handle_run(shared: &Arc<Shared>, spec: RunSpec, timeout_ms: Option<u64>) -> Json {
    let key = spec.cache_key();
    match run_point(shared, spec, timeout_ms) {
        PointResult::Err(response) => response,
        PointResult::Ok {
            outcome,
            cached,
            coalesced,
            latency_ms,
        } => {
            let mut o = response_base(true);
            o.set("cached", Json::Bool(cached))
                .set("coalesced", Json::Bool(coalesced))
                .set("key", Json::Str(format!("{key:016x}")))
                .set("latency_ms", Json::float(latency_ms))
                .set("report", report_json(&outcome));
            o
        }
    }
}

/// The sweep pipeline window: how many points may be in flight at once.
/// Sized to keep the worker pool busy without letting one connection
/// fill the admission queue by itself.
fn sweep_window(shared: &Arc<Shared>) -> usize {
    (shared.cfg.workers.max(1) * 2)
        .max(4)
        .min(shared.cfg.queue_cap.max(1))
}

/// A sweep is a batch of run points — the request's seeds crossed with
/// its optional axis values. Each point goes through the same
/// cache/store/coalesce/admission ladder, pipelined through a bounded
/// window (see [`crate::sweep`]), so a re-sent sweep is answered from
/// cache point by point, and a radio-axis sweep re-customizes one cached
/// topology per seed. Per-point results reuse the `crn-workloads` record
/// exporter shape (`RunRecord` JSONL objects), so sweep output splices
/// directly into existing analysis tooling. Returns `None` only when a
/// streamed row failed to write (dead client).
fn handle_sweep(
    shared: &Arc<Shared>,
    template: &RunSpec,
    seeds: &[u64],
    axis: Option<&Axis>,
    timeout_ms: Option<u64>,
    stream: Option<&mut TcpStream>,
) -> Option<Json> {
    drive_sweep(
        template,
        seeds,
        axis,
        timeout_ms,
        stream.map(|s| s as &mut dyn Write),
        sweep_window(shared),
        |spec| submit_point(shared, spec),
        |job, timeout_ms| match finish_point(shared, job, timeout_ms) {
            PointResult::Ok {
                outcome, cached, ..
            } => PointOutcome::Ok { outcome, cached },
            PointResult::Err(response) => PointOutcome::Err(response),
        },
    )
}

fn status_json(shared: &Arc<Shared>) -> Json {
    let draining = shared.draining();
    let mut o = response_base(true);
    o.set(
        "status",
        Json::Str(if draining { "draining" } else { "running" }.into()),
    )
    .set(
        "uptime_s",
        Json::float(shared.started.elapsed().as_secs_f64()),
    )
    .set("engine_version", Json::Str(ENGINE_VERSION.into()))
    .set("protocol_version", Json::UInt(PROTOCOL_VERSION));
    o
}

fn stats_json(shared: &Arc<Shared>) -> Json {
    let (counters_json, cache_json, hist, queue_depth, running, in_flight, draining) = {
        let st = shared.state.lock().expect("state poisoned");
        let mut c = st.counters;
        c.topology_hits = shared.exec.topology_hits();
        let cache = st.cache.stats();
        let mut counters = Json::obj();
        counters
            .set("received", Json::UInt(c.received))
            .set("served", Json::UInt(c.served))
            .set("cache_hits", Json::UInt(c.cache_hits))
            .set("store_hits", Json::UInt(c.store_hits))
            .set("coalesced", Json::UInt(c.coalesced))
            .set("computed", Json::UInt(c.computed))
            .set("topology_hits", Json::UInt(c.topology_hits))
            .set("rejected", Json::UInt(c.rejected))
            .set("timed_out", Json::UInt(c.timed_out))
            .set("failed", Json::UInt(c.failed))
            .set("bad_requests", Json::UInt(c.bad_requests));
        let mut cache_json = Json::obj();
        cache_json
            .set("capacity", Json::UInt(st.cache.capacity() as u64))
            .set("len", Json::UInt(st.cache.len() as u64))
            .set("hits", Json::UInt(cache.hits))
            .set("misses", Json::UInt(cache.misses))
            .set("evictions", Json::UInt(cache.evictions))
            .set("insertions", Json::UInt(cache.insertions));
        let mut hist = Vec::with_capacity(st.latency_hist.len());
        for (i, &count) in st.latency_hist.iter().enumerate() {
            let mut bucket = Json::obj();
            bucket.set(
                "le_ms",
                LATENCY_BUCKETS_MS
                    .get(i)
                    .map_or(Json::Null, |&le| Json::float(le)),
            );
            bucket.set("count", Json::UInt(count));
            hist.push(bucket);
        }
        (
            counters,
            cache_json,
            hist,
            st.queue.len(),
            st.running,
            st.in_flight.len(),
            st.draining,
        )
    };
    let (topo_cap, topo_len, topo) = shared.exec.topology_cache_stats();
    let mut topo_json = Json::obj();
    topo_json
        .set("capacity", Json::UInt(topo_cap as u64))
        .set("len", Json::UInt(topo_len as u64))
        .set("hits", Json::UInt(topo.hits))
        .set("misses", Json::UInt(topo.misses))
        .set("evictions", Json::UInt(topo.evictions))
        .set("insertions", Json::UInt(topo.insertions));
    let sh = shared.exec.telemetry.snapshot();
    let mut shards_json = Json::obj();
    shards_json
        .set("runs", Json::UInt(sh.runs))
        .set("shards_last", Json::UInt(sh.shards_last))
        .set("windows_committed", Json::UInt(sh.windows_committed))
        .set(
            "boundary_events_mirrored",
            Json::UInt(sh.boundary_events_mirrored),
        )
        .set("max_window_skew", Json::UInt(sh.max_window_skew));
    let mut s = Json::obj();
    s.set(
        "uptime_s",
        Json::float(shared.started.elapsed().as_secs_f64()),
    )
    .set("engine_version", Json::Str(ENGINE_VERSION.into()))
    .set("workers", Json::UInt(shared.cfg.workers.max(1) as u64))
    .set("queue_cap", Json::UInt(shared.cfg.queue_cap as u64))
    .set("queue_depth", Json::UInt(queue_depth as u64))
    .set("running", Json::UInt(running as u64))
    .set("in_flight", Json::UInt(in_flight as u64))
    .set("draining", Json::Bool(draining))
    .set("counters", counters_json)
    .set("cache", cache_json)
    .set("topology_cache", topo_json)
    .set("store", store_stats_json(shared.store.as_ref()))
    .set("shards", shards_json)
    .set("latency_ms", Json::Arr(hist));
    let mut o = response_base(true);
    o.set("stats", s);
    o
}

/// The persistent tier's stats object (also used by the cluster
/// coordinator, hence public within the crate family). Counter names
/// follow the `stats` vocabulary: `store_hits`/`store_bytes`/
/// `store_evictions` are the headline numbers.
#[must_use]
pub fn store_stats_json(store: Option<&Mutex<ResultStore>>) -> Json {
    let mut o = Json::obj();
    match store {
        None => {
            o.set("configured", Json::Bool(false));
        }
        Some(store) => {
            let s = store.lock().expect("store poisoned");
            let c = s.counters();
            o.set("configured", Json::Bool(true))
                .set("len", Json::UInt(s.len() as u64))
                .set("store_bytes", Json::UInt(s.bytes()))
                .set("store_hits", Json::UInt(c.hits))
                .set("store_evictions", Json::UInt(c.evictions))
                .set("misses", Json::UInt(c.misses))
                .set("writes", Json::UInt(c.writes))
                .set("repaired", Json::UInt(c.repaired));
        }
    }
    o
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("state poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if st.draining {
                    return;
                }
                st = shared.work_ready.wait(st).expect("state poisoned");
            }
        };
        let outcome: JobOutcome = shared.exec.execute(&job.spec).map(Arc::new);
        {
            let mut st = shared.state.lock().expect("state poisoned");
            st.running -= 1;
            st.in_flight.remove(&job.key);
            match &outcome {
                Ok(o) => {
                    st.counters.computed += 1;
                    st.cache.insert(job.key, o.clone());
                }
                Err(_) => {
                    // The failure counter is incremented per *waiter* in
                    // handle_run; nothing to cache.
                }
            }
        }
        // Durable commit outside the state lock; a failed write degrades
        // restart warmth, not this response.
        if let (Some(store), Ok(o)) = (&shared.store, &outcome) {
            let _ = store.lock().expect("store poisoned").put(job.key, o);
        }
        job.complete(outcome);
    }
}

/// Exporter-shape helper used by the sweep path; lives here so the serve
/// crate has exactly one conversion from outcomes to record objects.
/// Seed sweeps use `("seed", seed)` as the x coordinate, axis sweeps use
/// the axis label and value.
#[must_use]
pub fn outcome_record_json(x_name: &str, x: f64, outcome: &CollectionOutcome) -> Json {
    let record = RunRecord::from_outcome("serve", x_name, x, 0, outcome);
    record_jsonl(&record)
        .parse()
        .expect("record exporter emits valid JSON")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_line_reader_accepts_and_discards() {
        let data = b"short line\n".to_vec();
        let mut reader = BufReader::new(Cursor::new(data));
        let mut line = String::new();
        let mut discarding = false;
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::Line
        );
        assert_eq!(line.trim(), "short line");
        line.clear();
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::Eof
        );
    }

    #[test]
    fn oversized_line_is_discarded_and_next_line_survives() {
        let mut data = vec![b'x'; 200];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut reader = BufReader::new(Cursor::new(data));
        let mut line = String::new();
        let mut discarding = false;
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::TooLarge
        );
        assert!(line.is_empty(), "oversized prefix is not retained");
        assert!(!discarding);
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::Line
        );
        assert_eq!(line.trim(), "ok");
    }

    #[test]
    fn oversized_line_without_newline_ends_in_eof() {
        let data = vec![b'y'; 500];
        let mut reader = BufReader::new(Cursor::new(data));
        let mut line = String::new();
        let mut discarding = false;
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::Eof
        );
    }

    #[test]
    fn trailing_line_without_newline_is_still_a_line() {
        let mut reader = BufReader::new(Cursor::new(b"tail".to_vec()));
        let mut line = String::new();
        let mut discarding = false;
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::Line
        );
        assert_eq!(line, "tail");
        line.clear();
        assert_eq!(
            read_bounded_line(&mut reader, &mut line, &mut discarding, 64),
            LineRead::Eof
        );
    }
}
