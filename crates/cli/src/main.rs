//! `crn` — command-line interface to the ADDC (ICDCS 2012) reproduction.
//!
//! ```text
//! crn run   [--sus N] [--pus N] [--side S] [--pt P] [--seed K] [--algo addc|coolest|coolest-oracle|bfs]
//! crn sweep <a..f|all> [--preset paper|scaled|tiny] [--reps R] [--threads T]
//! crn pcr   [--alpha A] [--eta-db E] [--pp P] [--ps P] [--big-r R] [--r r]
//! crn bounds [--sus N] [--pus N] [--side S] [--pt P]
//! ```

#![forbid(unsafe_code)]

mod cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            if e.show_usage {
                eprintln!("{}", cli::USAGE);
            }
            std::process::exit(e.code);
        }
    }
}
