//! Asynchronous discrete-event simulator for the ADDC (ICDCS 2012)
//! reproduction.
//!
//! This crate is the **evaluation platform** the paper's authors never
//! published: an event-driven simulator of a secondary network of
//! carrier-sensing SUs coexisting with a slotted primary network, under
//! the cumulative physical (SIR) interference model of Section III.
//!
//! ## Model highlights (see `DESIGN.md` §4)
//!
//! - **Asynchrony**: SUs keep their own continuous-time backoff clocks;
//!   only the PU activity process is slotted (`τ = 1 ms`). There is no
//!   global SU synchronization anywhere.
//! - **Algorithm 1 MAC**: each SU draws a backoff `t_i ∈ (0, τ_c]`, counts
//!   down only while the channel within its PCR is free (freezing
//!   otherwise), transmits one packet to its tree parent on expiry, then
//!   waits the *fairness* remainder `τ_c − t_i`.
//! - **Spectrum handoff**: if a PU inside the transmitter's PCR activates
//!   mid-transmission, the SU aborts immediately and retries later.
//! - **Reception**: receivers track cumulative SIR from *all* concurrent
//!   transmitters (PU + SU) incrementally; RS-mode capture locks a
//!   receiver onto the strongest addressed signal.
//! - **Determinism**: all randomness flows from one seeded RNG; ties in
//!   event time break by sequence number, so a `(scenario, seed)` pair
//!   reproduces exactly.
//! - **Observability**: the engine emits typed [`TraceEvent`]s to a
//!   pluggable [`Probe`] (ring-buffer [`TraceLog`], bucketed
//!   [`TimeSeries`], or your own). The default [`NoopProbe`] makes the
//!   instrumentation free when unused.
//!
//! # Example
//!
//! Worlds and simulators are assembled through builders; both validate
//! their inputs ([`SimWorldBuilder::build`] returns a [`WorldError`]).
//!
//! ```
//! use crn_geometry::{Point, Region};
//! use crn_sim::{Simulator, SimWorld};
//!
//! // A two-SU chain with no PUs: both packets reach the base station.
//! let world = SimWorld::builder(Region::square(30.0))
//!     .su_positions(vec![
//!         Point::new(5.0, 5.0),
//!         Point::new(12.0, 5.0),
//!         Point::new(19.0, 5.0),
//!     ])
//!     .parents(vec![None, Some(0), Some(1)])
//!     .sense_range(25.0)
//!     .build()
//!     .unwrap();
//! let report = Simulator::builder(world).seed(7).build().unwrap().run();
//! assert!(report.finished);
//! assert_eq!(report.packets_delivered, 2);
//! ```
//!
//! To watch a run instead of just summarizing it, attach a probe:
//!
//! ```
//! use crn_geometry::{Point, Region};
//! use crn_sim::{Simulator, SimWorld, TraceEventKind, TraceLog};
//!
//! let world = SimWorld::builder(Region::square(30.0))
//!     .su_positions(vec![Point::new(5.0, 5.0), Point::new(12.0, 5.0)])
//!     .parents(vec![None, Some(0)])
//!     .sense_range(25.0)
//!     .build()
//!     .unwrap();
//! let (report, trace) = Simulator::builder(world)
//!     .seed(7)
//!     .probe(TraceLog::unbounded())
//!     .build()
//!     .unwrap()
//!     .run_with_probe();
//! let deliveries = trace
//!     .events()
//!     .filter(|e| matches!(e.kind, TraceEventKind::Delivery { .. }))
//!     .count();
//! assert_eq!(deliveries, report.packets_delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod event;
mod oracle;
mod plane;
mod probe;
mod radio;
mod report;
mod topology;
mod world;

pub use config::{BuildError, InterferenceModel, MacConfig, Traffic};
pub use crn_faults::{
    ChurnSpec, FaultError, FaultEvent, FaultKind, FaultPlan, FaultSchedule, FaultsConfig,
};
pub use engine::{Simulator, SimulatorBuilder};
pub use oracle::{InvariantChecker, InvariantKind, Violation};
pub use plane::SirPlane;
pub use probe::{
    NoopProbe, Probe, TimeSeries, TimeSeriesPoint, TraceEvent, TraceEventKind, TraceLog, TxOutcome,
};
pub use radio::{Radio, RadioParams};
pub use report::{NodeStats, SimReport};
pub use topology::{Topology, TopologyBuilder};
pub use world::{SimWorld, SimWorldBuilder, WorldError};
