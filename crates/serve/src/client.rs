//! A minimal blocking client for the JSON-lines protocol, used by
//! `crn submit`, the `bench-serve` load generator, and the end-to-end
//! tests. One request line out, one response line back.

use crn_workloads::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed (transport or protocol layer — a server-side
/// error *response* is returned as a parsed [`Json`] object, not as a
/// `ClientError`).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, or unexpected EOF).
    Io(std::io::Error),
    /// The server's reply was not a parseable JSON line.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client. Requests are serialized over one
/// connection; open several clients for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sets (or clears) a socket read timeout for responses.
    ///
    /// # Errors
    ///
    /// Propagates setsockopt failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one raw request line and returns the parsed response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure or EOF,
    /// [`ClientError::Protocol`] if the response line is not JSON.
    pub fn request_line(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        response
            .trim()
            .parse()
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Sends a request object (serialized to one line).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        self.request_line(&req.to_string())
    }

    /// Sends one request line and consumes a streamed response: every
    /// interim line carrying a `row` field is handed to `on_row` (the
    /// `row` value itself, not the envelope), and the first line without
    /// one is returned as the final response.
    ///
    /// Works against non-streaming responses too — the single reply has
    /// no `row`, so it is returned directly and `on_row` never fires.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure or EOF before the final
    /// response, [`ClientError::Protocol`] if any line is not JSON.
    pub fn request_stream(
        &mut self,
        line: &str,
        mut on_row: impl FnMut(Json),
    ) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let mut response = String::new();
            let n = self.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-stream",
                )));
            }
            let parsed: Json = response
                .trim()
                .parse()
                .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
            match parsed.get("row") {
                Some(row) => on_row(row.clone()),
                None => return Ok(parsed),
            }
        }
    }

    /// Convenience: requests the server's `stats` object.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or [`ClientError::Protocol`] if the
    /// response has no `stats` field.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let mut req = Json::obj();
        req.set("v", Json::UInt(crate::PROTOCOL_VERSION))
            .set("cmd", Json::Str("stats".into()));
        let response = self.request(&req)?;
        response
            .get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol(format!("no stats in response: {response}")))
    }

    /// Convenience: asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        let mut req = Json::obj();
        req.set("v", Json::UInt(crate::PROTOCOL_VERSION))
            .set("cmd", Json::Str("shutdown".into()));
        self.request(&req)
    }
}
