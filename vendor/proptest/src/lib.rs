//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! range/tuple strategies, `prop_map`, `collection::vec`, the `proptest!`
//! macro with `proptest_config`, and the `prop_assert*` macros — as plain
//! deterministic random sampling. There is **no shrinking**: a failing case
//! reports the case number and the (name-derived) seed so it can be rerun,
//! which is enough for the property suites in this repository.

#![forbid(unsafe_code)]

/// Core sampling abstraction: a source of random values of one type.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A strategy produces values of type [`Strategy::Value`] from a seeded
    /// RNG. Unlike real proptest there is no value tree / shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.uniform_f64(self.start, self.end)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.uniform_f64_inclusive(*self.start(), *self.end())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-execution machinery used by the `proptest!` macro expansion.
pub mod test_runner {
    /// Per-suite configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A property-test failure (non-panicking path, via `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Construct a failure with the given message.
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG for strategies: SplitMix64, seeded from the test
    /// name so every run of a given test replays the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary byte string (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128).wrapping_mul(span)) >> 64
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo < hi, "empty f64 range strategy");
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }

        /// Uniform draw in `[lo, hi]`.
        pub fn uniform_f64_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo <= hi, "empty f64 range strategy");
            let unit = self.next_u64() as f64 / u64::MAX as f64;
            (lo + (hi - lo) * unit).clamp(lo, hi)
        }
    }

    /// Drives one property over `config.cases` sampled cases.
    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
    }

    impl TestRunner {
        /// New runner for the named test.
        ///
        /// The RNG seeds from the test name, so a given test replays the
        /// same cases on every run. If the `PROPTEST_RNG_SEED` environment
        /// variable is set to a `u64`, it is mixed into the seed: CI can
        /// pin an exact corpus (or rotate it deliberately) across machines
        /// without touching the tests.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut rng = TestRng::from_name(name);
            if let Some(seed) = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
            {
                rng.state ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            Self {
                cases: config.cases,
                rng,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Everything the property suites import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: same surface syntax as real proptest for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __runner =
                $crate::test_runner::TestRunner::new(__config, stringify!($name));
            for __case in 0..__runner.cases() {
                let ($($arg,)+) =
                    ($($crate::strategy::Strategy::sample(&($strat), __runner.rng()),)+);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __runner.cases(),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside `proptest!`, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Assert two values are not equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 10u32..20, v in collection::vec(0usize..=3, 2..5)) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((10..20).contains(&n));
            prop_assert!((2..5).contains(&v.len()));
            for e in v {
                prop_assert!(e <= 3);
            }
        }

        #[test]
        fn prop_map_applies(y in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let mut c = crate::test_runner::TestRng::from_name("u");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn env_seed_shifts_the_corpus() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        // Serialize against any other env-touching test in this binary.
        let draw = || {
            let mut r = TestRunner::new(ProptestConfig::with_cases(1), "env_seed_test");
            (0..4).map(|_| r.rng().next_u64()).collect::<Vec<u64>>()
        };
        let base = draw();
        std::env::set_var("PROPTEST_RNG_SEED", "12345");
        let pinned_a = draw();
        let pinned_b = draw();
        std::env::set_var("PROPTEST_RNG_SEED", "not a number");
        let garbage = draw();
        std::env::remove_var("PROPTEST_RNG_SEED");
        let back = draw();
        assert_eq!(pinned_a, pinned_b, "a pinned seed must be reproducible");
        assert_ne!(base, pinned_a, "the seed must actually shift the corpus");
        assert_eq!(base, back, "unsetting restores the name-derived corpus");
        assert_eq!(base, garbage, "unparsable seeds are ignored");
    }
}
