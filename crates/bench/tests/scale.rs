//! Release-mode scale smoke tests for the sparse interference engine.
//!
//! These are `#[ignore]`d so the ordinary (debug) `cargo test` stays fast;
//! CI's scale job runs them with
//! `cargo test --release -p crn-bench -- --ignored`.

use crn_bench::synthetic::grid_world;
use crn_shard::{build_plane, ShardConfig, ShardMode};
use crn_sim::{InterferenceModel, MacConfig, Simulator, TraceLog};
use std::sync::Arc;
use std::time::Instant;

#[test]
#[ignore = "release-mode scale smoke test (CI scale job)"]
fn sparse_engine_handles_ten_thousand_sus() {
    let started = Instant::now();
    let world = grid_world(10_000, InterferenceModel::Truncated { epsilon: 0.1 });
    let build = started.elapsed();
    assert_eq!(world.num_sus(), 10_001);
    assert!(
        world.truncation_stats().is_some(),
        "scale world must use sparse tables"
    );
    let mac = MacConfig {
        max_sim_time: 0.1,
        ..MacConfig::default()
    };
    let report = Simulator::builder(world)
        .mac(mac)
        .seed(7)
        .build()
        .unwrap()
        .run();
    assert!(report.attempts > 0, "capped 10k-SU run must make progress");
    eprintln!(
        "n=10000 sparse: built in {:.1} ms, {} attempts in 100 slots",
        build.as_secs_f64() * 1e3,
        report.attempts
    );
}

/// The committed pre-delta-engine sparse throughput at `n = 5000`
/// (`events_per_sec` in `results/BENCH_sim.json` at this change's seed
/// commit). The delta engine must hold a ≥5× floor over it.
const SEED_EVENTS_PER_SEC_N5000: f64 = 1_179_089.0;
const REQUIRED_SPEEDUP: f64 = 5.0;

#[test]
#[ignore = "release-mode throughput regression gate (CI scale job)"]
fn delta_engine_holds_five_x_floor_at_five_thousand_sus() {
    let world = Arc::new(grid_world(
        5_000,
        InterferenceModel::Truncated { epsilon: 0.1 },
    ));
    let mac = MacConfig {
        max_sim_time: 0.2,
        ..MacConfig::default()
    };
    // Mirrors `bench_sim::capped_run` (same seed, probe, and cap), best
    // of five deterministic reruns: host noise can only slow a run
    // down, so the fastest sample is the honest throughput estimate.
    let run = |full_scan: bool| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..5 {
            let sim = Simulator::builder(world.clone())
                .mac(mac)
                .seed(42)
                .full_scan(full_scan)
                .probe(TraceLog::bounded(64))
                .build()
                .unwrap();
            let started = Instant::now();
            let (_, trace) = sim.run_with_probe();
            let wall = started.elapsed().as_secs_f64();
            let events = trace.len() as u64 + trace.dropped();
            best = best.max(events as f64 / wall.max(1e-9));
        }
        best
    };
    let delta = run(false);
    let scan = run(true);
    eprintln!(
        "n=5000 sparse: delta {delta:.0} events/s, scan reference {scan:.0} events/s \
         ({:.1}x in-process), committed seed {SEED_EVENTS_PER_SEC_N5000:.0}",
        delta / scan
    );
    assert!(
        delta >= REQUIRED_SPEEDUP * SEED_EVENTS_PER_SEC_N5000,
        "throughput regression: delta engine ran {delta:.0} events/s, below {REQUIRED_SPEEDUP}x \
         the committed seed baseline of {SEED_EVENTS_PER_SEC_N5000:.0} events/s"
    );
}

/// Release gate for the sharded SIR plane: at `n = 100_000` with one
/// shard per core, threaded execution must clear 3× the sequential
/// engine's event throughput. Only meaningful on a real multi-core
/// host, so it self-skips (loudly) below four cores — single-core CI
/// still covers correctness via the determinism suites; this gate is
/// about *speed*.
#[test]
#[ignore = "release-mode sharded speedup gate (CI scale job; needs ≥4 cores)"]
fn sharded_plane_holds_three_x_at_hundred_thousand_sus() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping sharded speedup gate: {cores} core(s) < 4");
        return;
    }
    let world = Arc::new(grid_world(
        100_000,
        InterferenceModel::Truncated { epsilon: 0.1 },
    ));
    let mac = MacConfig {
        max_sim_time: 0.05,
        ..MacConfig::default()
    };
    let cfg = ShardConfig {
        mode: ShardMode::Fixed(u32::try_from(cores).unwrap_or(u32::MAX)),
        threaded: Some(true),
        telemetry: None,
    };
    // Best of three (builds are expensive at this size); the timed
    // region includes the per-run partition build, which is a real
    // per-run cost of the sharded path.
    let mut sequential = 0.0f64;
    let mut sharded = 0.0f64;
    let mut baseline = None;
    for _ in 0..3 {
        let started = Instant::now();
        let (report, trace) = Simulator::builder(world.clone())
            .mac(mac)
            .seed(42)
            .probe(TraceLog::bounded(64))
            .build()
            .unwrap()
            .run_with_probe();
        let wall = started.elapsed().as_secs_f64();
        let events = trace.len() as u64 + trace.dropped();
        sequential = sequential.max(events as f64 / wall.max(1e-9));
        match &baseline {
            Some(first) => assert_eq!(first, &report, "deterministic rerun diverged"),
            None => baseline = Some(report),
        }
    }
    let baseline = baseline.expect("three sequential runs happened");
    for _ in 0..3 {
        let started = Instant::now();
        let plane = build_plane(&world, &mac, &cfg).expect("sparse 100k world shards");
        let (report, trace) = Simulator::builder(world.clone())
            .mac(mac)
            .seed(42)
            .sir_plane(plane)
            .probe(TraceLog::bounded(64))
            .build()
            .unwrap()
            .run_with_probe();
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(
            baseline, report,
            "sharded run diverged from the sequential report"
        );
        let events = trace.len() as u64 + trace.dropped();
        sharded = sharded.max(events as f64 / wall.max(1e-9));
    }
    eprintln!(
        "n=100000 sparse: sequential {sequential:.0} events/s, sharded {sharded:.0} events/s \
         ({:.1}x on {cores} cores)",
        sharded / sequential.max(1e-9)
    );
    assert!(
        sharded >= 3.0 * sequential,
        "sharded plane ran {sharded:.0} events/s on {cores} cores, below 3x the sequential \
         {sequential:.0} events/s"
    );
}

/// Best-of-`rounds` construction time: the minimum is the honest estimate
/// of the work itself on a noisy shared box (first-touch page faults and
/// scheduler preemption only ever inflate a round).
fn best_construction_seconds(
    n: usize,
    model: InterferenceModel,
    rounds: usize,
) -> (f64, crn_sim::SimWorld) {
    let mut best = f64::INFINITY;
    let mut world = None;
    for _ in 0..rounds {
        let started = Instant::now();
        let w = grid_world(n, model);
        best = best.min(started.elapsed().as_secs_f64());
        world = Some(w);
    }
    (best, world.expect("rounds >= 1"))
}

#[test]
#[ignore = "release-mode scale smoke test (CI scale job)"]
fn sparse_beats_dense_at_five_thousand_sus() {
    let (dense_build, dense) = best_construction_seconds(5_000, InterferenceModel::Exact, 3);
    let (sparse_build, sparse) =
        best_construction_seconds(5_000, InterferenceModel::Truncated { epsilon: 0.1 }, 3);
    eprintln!(
        "n=5000 construction: dense {:.1} ms / {} B, sparse {:.1} ms / {} B",
        dense_build * 1e3,
        dense.gain_table_bytes(),
        sparse_build * 1e3,
        sparse.gain_table_bytes()
    );
    assert!(
        dense.gain_table_bytes() >= 10 * sparse.gain_table_bytes(),
        "sparse tables must be ≥10× smaller: dense {} B vs sparse {} B",
        dense.gain_table_bytes(),
        sparse.gain_table_bytes()
    );
    assert!(
        dense_build >= 5.0 * sparse_build,
        "sparse construction must be ≥5× faster: dense {dense_build:.3}s vs sparse {sparse_build:.3}s"
    );
}
