//! `crn-serve`: a concurrent simulation service for the ADDC
//! reproduction.
//!
//! The crate turns the library's scenario runner into a long-lived
//! JSON-lines-over-TCP service with the operational features batch
//! sweeps want but one-shot CLI runs lack:
//!
//! - **Request batching** — a `sweep` request runs one parameter set
//!   over many seeds in a single round trip.
//! - **Result caching** — responses are content-addressed by
//!   [`protocol::RunSpec::cache_key`] (canonical parameters + algorithm +
//!   oracle flag + engine version), so repeated points are answered
//!   without recomputation.
//! - **Single-flight dedup** — identical concurrent requests coalesce
//!   onto one computation instead of racing each other.
//! - **Admission control** — a bounded queue in front of a fixed worker
//!   pool; when it is full the service says `429 overloaded` immediately
//!   rather than letting latency collapse.
//! - **Deadlines** — per-request `timeout_ms` with a CLI repro string in
//!   the `408 timed_out` response.
//! - **Observability** — a `stats` request exposing queue depth,
//!   cache/coalesce counters, and a latency histogram.
//!
//! Everything is `std`-only (`std::net` + threads): the protocol is one
//! JSON object per line in each direction, so `nc` is a usable client.
//! See `protocol.rs` for the wire format and `server.rs` for the
//! runtime; [`client::Client`] is a minimal blocking client used by the
//! CLI (`crn submit`) and the load generator.

pub mod cache;
pub mod client;
pub mod exec;
pub mod outcome_codec;
pub mod protocol;
pub mod server;
pub mod store;
pub mod sweep;

pub use cache::{CacheStats, LruCache};
pub use client::{Client, ClientError};
pub use protocol::{RunSpec, PROTOCOL_VERSION};
pub use server::{Counters, ServeConfig, Server};
pub use store::{ResultStore, StoreConfig, StoreCounters};

/// Protocol-visible error taxonomy. Every error response carries the
/// snake_case kind plus an HTTP-flavoured numeric code so clients can
/// branch without string matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, unknown request type, or invalid parameters.
    BadRequest,
    /// The `v` field is missing or names a protocol we don't speak.
    UnsupportedVersion,
    /// Admission control rejected the request (queue full).
    Overloaded,
    /// The request's `timeout_ms` deadline expired before completion.
    TimedOut,
    /// The server is draining after a shutdown request.
    Draining,
    /// Scenario generation or simulation failed.
    SimFailed,
    /// The run was executed with `check_invariants` and the oracle
    /// reported a violation.
    InvariantViolation,
    /// The simulation panicked; the worker caught it and the server
    /// kept running.
    WorkerPanicked,
    /// The request line exceeded the server's accepted length bound.
    RequestTooLarge,
}

impl ErrorKind {
    /// The stable snake_case identifier used on the wire.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::TimedOut => "timed_out",
            ErrorKind::Draining => "draining",
            ErrorKind::SimFailed => "sim_failed",
            ErrorKind::InvariantViolation => "invariant_violation",
            ErrorKind::WorkerPanicked => "worker_panicked",
            ErrorKind::RequestTooLarge => "request_too_large",
        }
    }

    /// HTTP-flavoured numeric code for the kind.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ErrorKind::BadRequest | ErrorKind::UnsupportedVersion | ErrorKind::RequestTooLarge => {
                400
            }
            ErrorKind::TimedOut => 408,
            ErrorKind::Overloaded => 429,
            ErrorKind::Draining => 503,
            ErrorKind::SimFailed | ErrorKind::InvariantViolation | ErrorKind::WorkerPanicked => 500,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ErrorKind {
    type Err = String;

    /// Parses the wire names emitted by [`ErrorKind::as_str`] (used by
    /// the cluster's internal `result` messages to ship typed failures
    /// across processes).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bad_request" => Ok(ErrorKind::BadRequest),
            "unsupported_version" => Ok(ErrorKind::UnsupportedVersion),
            "overloaded" => Ok(ErrorKind::Overloaded),
            "timed_out" => Ok(ErrorKind::TimedOut),
            "draining" => Ok(ErrorKind::Draining),
            "sim_failed" => Ok(ErrorKind::SimFailed),
            "invariant_violation" => Ok(ErrorKind::InvariantViolation),
            "worker_panicked" => Ok(ErrorKind::WorkerPanicked),
            "request_too_large" => Ok(ErrorKind::RequestTooLarge),
            other => Err(format!("unknown error kind '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kinds_have_distinct_wire_names() {
        let kinds = [
            ErrorKind::BadRequest,
            ErrorKind::UnsupportedVersion,
            ErrorKind::Overloaded,
            ErrorKind::TimedOut,
            ErrorKind::Draining,
            ErrorKind::SimFailed,
            ErrorKind::InvariantViolation,
            ErrorKind::WorkerPanicked,
            ErrorKind::RequestTooLarge,
        ];
        let names: std::collections::HashSet<&str> = kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(names.len(), kinds.len());
        assert_eq!(ErrorKind::Overloaded.code(), 429);
        assert_eq!(ErrorKind::TimedOut.code(), 408);
    }
}
