//! 2-D geometry substrate for the ADDC (ICDCS 2012) reproduction.
//!
//! Cognitive-radio-network simulations live on the Euclidean plane: primary
//! and secondary users are points, interference decays with distance, and
//! carrier sensing is a disk query. This crate provides the small, fast
//! geometric toolkit every other crate builds on:
//!
//! - [`Point`] and distance helpers,
//! - [`Region`], the rectangular deployment area (the paper uses a square of
//!   size `A = c0 * n`),
//! - [`GridIndex`], a uniform-grid spatial index for fast disk queries
//!   (used for neighbor discovery and carrier-sensing sets),
//! - [`Deployment`], seeded i.i.d. uniform node placement,
//! - [`packing`], the disk-packing lemmas the paper's analysis relies on
//!   (Lemma 4's packing bound and the hexagon-layer counts behind Lemma 2).
//!
//! # Example
//!
//! ```
//! use crn_geometry::{Deployment, GridIndex, Point, Region};
//! use rand::SeedableRng;
//!
//! let region = Region::square(250.0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let deployment = Deployment::uniform(region, 100, &mut rng);
//! let index = GridIndex::build(deployment.points(), region, 10.0);
//! let near = index.within_disk(Point::new(125.0, 125.0), 10.0);
//! assert!(near.len() <= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deploy;
mod grid;
pub mod packing;
mod point;
mod region;

pub use deploy::Deployment;
pub use grid::GridIndex;
pub use point::Point;
pub use region::Region;
