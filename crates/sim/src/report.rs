use serde::{Deserialize, Serialize};

/// Per-SU counters, indexed like the world's nodes (entry 0 is the base
/// station, which never transmits). These are the raw material for
/// straggler analysis: a node with many attempts and few successes sits
/// in a PU-dense pocket or a collision hot spot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Transmission attempts by this node.
    pub attempts: u32,
    /// Successful transmissions by this node.
    pub successes: u32,
    /// Spectrum handoffs suffered by this node.
    pub pu_aborts: u32,
    /// SIR losses suffered by this node's transmissions.
    pub sir_failures: u32,
    /// Largest queue this node ever held.
    pub peak_queue: u32,
    /// Transmissions by this node voided by an injected fault (its own
    /// crash/pause, a dead receiver, or a base-station brownout).
    pub fault_aborts: u32,
    /// Packets lost at this node to injected faults (queue dropped on
    /// crash, or generated while crashed).
    pub packets_lost: u32,
}

/// Outcome of one simulated data collection task.
///
/// Produced by [`crate::Simulator::run`]; all delay quantities are in
/// simulated seconds unless suffixed `_slots`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Whether the whole snapshot reached the base station before the
    /// safety cap.
    pub finished: bool,
    /// Time at which the last packet arrived (or the cap, if unfinished).
    pub delay: f64,
    /// [`SimReport::delay`] expressed in slots of `τ`.
    pub delay_slots: f64,
    /// Snapshot size (`n`: one packet per SU, base station excluded).
    pub packets_expected: usize,
    /// Packets that reached the base station.
    pub packets_delivered: usize,
    /// Per-origin delivery time, indexed by SU id (entry 0, the base
    /// station, is always `None`).
    pub delivery_times: Vec<Option<f64>>,
    /// Transmission attempts (airtime occupations).
    pub attempts: u64,
    /// Successful child → parent packet deliveries.
    pub successes: u64,
    /// Transmissions aborted by spectrum handoff (a PU activated inside
    /// the transmitter's PCR mid-transmission).
    pub pu_aborts: u64,
    /// Receptions lost to cumulative SIR violations.
    pub sir_failures: u64,
    /// Receptions lost to RS-mode capture (a stronger signal took the
    /// receiver).
    pub capture_losses: u64,
    /// Largest queue length observed at any SU — the paper's "data
    /// accumulation effect" made measurable (routing structures that
    /// funnel flows onto shared relays push this up).
    pub peak_queue: usize,
    /// Mean time from the start of a backoff round to a successful
    /// transmission's end (per-packet service time; compare Theorem 1).
    pub mean_service_time: f64,
    /// Maximum observed per-packet service time.
    pub max_service_time: f64,
    /// Total events processed (diagnostic).
    pub events_processed: u64,
    /// Packets lost to injected faults (crashed queues and packets
    /// generated on crashed nodes). Always 0 in fault-free runs; packet
    /// conservation is `generated = delivered + queued + packets_lost`.
    pub packets_lost: u64,
    /// Transmissions voided by injected faults (transmitter crash/pause,
    /// dead receiver, base-station brownout). Always 0 without faults.
    pub fault_aborts: u64,
    /// Self-healing re-parent operations performed.
    pub reparents: u32,
    /// Mean latency from orphaning to adoption across re-parents
    /// (0 when none occurred), in seconds.
    pub reparent_latency_mean: f64,
    /// Largest re-parent latency observed, in seconds.
    pub reparent_latency_max: f64,
    /// Per-node counters (entry 0 is the base station).
    pub node_stats: Vec<NodeStats>,
}

impl SimReport {
    /// Achieved data-collection capacity as a fraction of the channel
    /// bandwidth `W` (the paper's upper bound is `W`, i.e. fraction 1):
    /// `delivered / delay_slots`.
    ///
    /// Returns 0 when nothing was delivered.
    #[must_use]
    pub fn capacity_fraction(&self) -> f64 {
        if self.packets_delivered == 0 || self.delay_slots <= 0.0 {
            0.0
        } else {
            self.packets_delivered as f64 / self.delay_slots
        }
    }

    /// Jain's fairness index over per-origin delivery times (1 = all flows
    /// finished together; → `1/n` = one flow hogged the channel). Every
    /// delivered flow counts, including deliveries at `t = 0` —
    /// undelivered flows are the `None` entries, not the zero times.
    /// Returns `None` if fewer than two flows were delivered.
    #[must_use]
    pub fn jain_fairness(&self) -> Option<f64> {
        let times: Vec<f64> = self.delivery_times.iter().flatten().copied().collect();
        if times.len() < 2 {
            return None;
        }
        let sum: f64 = times.iter().sum();
        let sum_sq: f64 = times.iter().map(|t| t * t).sum();
        Some(sum * sum / (times.len() as f64 * sum_sq))
    }

    /// Fraction of the expected snapshot that reached the base station:
    /// `delivered / expected` (1 when nothing was expected). Under fault
    /// injection this is the headline degradation metric — packets lost
    /// to crashes pull it below 1 even in "finished" runs, where every
    /// surviving packet was accounted for.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_expected == 0 {
            1.0
        } else {
            self.packets_delivered as f64 / self.packets_expected as f64
        }
    }

    /// Per-node fault-loss counts, indexed like [`SimReport::node_stats`]
    /// (entry 0 is the base station): how many packets each node lost to
    /// injected faults. All zeros in fault-free runs.
    #[must_use]
    pub fn loss_counts(&self) -> Vec<u32> {
        self.node_stats.iter().map(|s| s.packets_lost).collect()
    }

    /// Fraction of attempts that succeeded.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Node ids sorted by descending attempt count — the contention hot
    /// spots (truncated to `top`).
    #[must_use]
    pub fn busiest_nodes(&self, top: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.node_stats.len() as u32).collect();
        ids.sort_by_key(|&u| std::cmp::Reverse(self.node_stats[u as usize].attempts));
        ids.truncate(top);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            finished: true,
            delay: 0.01,
            delay_slots: 10.0,
            packets_expected: 5,
            packets_delivered: 5,
            delivery_times: vec![
                None,
                Some(0.002),
                Some(0.004),
                Some(0.006),
                Some(0.008),
                Some(0.01),
            ],
            attempts: 8,
            successes: 6,
            pu_aborts: 1,
            sir_failures: 1,
            capture_losses: 0,
            peak_queue: 3,
            mean_service_time: 0.001,
            max_service_time: 0.002,
            events_processed: 100,
            packets_lost: 0,
            fault_aborts: 0,
            reparents: 0,
            reparent_latency_mean: 0.0,
            reparent_latency_max: 0.0,
            node_stats: vec![NodeStats::default(); 6],
        }
    }

    #[test]
    fn delivery_ratio_and_loss_counts() {
        let mut r = report();
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
        r.packets_delivered = 3;
        assert!((r.delivery_ratio() - 0.6).abs() < 1e-12);
        r.packets_expected = 0;
        assert_eq!(r.delivery_ratio(), 1.0);
        let mut r = report();
        r.node_stats[2].packets_lost = 4;
        assert_eq!(r.loss_counts(), vec![0, 0, 4, 0, 0, 0]);
    }

    #[test]
    fn capacity_fraction_is_delivered_over_slots() {
        let r = report();
        assert!((r.capacity_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_when_nothing_delivered() {
        let mut r = report();
        r.packets_delivered = 0;
        assert_eq!(r.capacity_fraction(), 0.0);
    }

    #[test]
    fn jain_equal_times_is_one() {
        let mut r = report();
        r.delivery_times = vec![None, Some(3.0), Some(3.0), Some(3.0)];
        assert!((r.jain_fairness().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_skewed_times_below_one() {
        let mut r = report();
        r.delivery_times = vec![None, Some(1.0), Some(100.0)];
        let j = r.jain_fairness().unwrap();
        assert!(j < 0.6, "jain {j}");
        assert!(j > 0.5 - 1e-9, "jain lower bound 1/n: {j}");
    }

    #[test]
    fn jain_counts_time_zero_deliveries() {
        // A delivery at t = 0 is a delivered flow, not a missing one: with
        // one flow at 0 and one at 2, Jain is (0+2)²/(2·(0²+2²)) = 0.5.
        let mut r = report();
        r.delivery_times = vec![None, Some(0.0), Some(2.0)];
        let j = r.jain_fairness().expect("two delivered flows");
        assert!((j - 0.5).abs() < 1e-12, "jain {j}");
        // Two flows, one delivered at 0: still only pairs with a second
        // *delivered* flow — a lone t = 0 delivery yields None.
        r.delivery_times = vec![None, Some(0.0), None];
        assert_eq!(r.jain_fairness(), None);
    }

    #[test]
    fn jain_requires_two_flows() {
        let mut r = report();
        r.delivery_times = vec![None, Some(1.0)];
        assert_eq!(r.jain_fairness(), None);
    }

    #[test]
    fn success_rate() {
        let r = report();
        assert!((r.success_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn busiest_nodes_sorted_and_truncated() {
        let mut r = report();
        r.node_stats[2].attempts = 9;
        r.node_stats[4].attempts = 3;
        let top = r.busiest_nodes(2);
        assert_eq!(top, vec![2, 4]);
        assert_eq!(r.busiest_nodes(0), Vec::<u32>::new());
    }
}
