//! Analytic delay/capacity bounds of the ADDC paper (Lemmas 4–8,
//! Theorems 1–2), as executable formulas.
//!
//! All bounds are expressed in **slots** (multiples of `τ`), matching the
//! paper's statements up to the `τ` factor, and are built from:
//!
//! - `β_x = 2πx²/√3 + πx + 1` — Lemma 4's packing bound,
//! - `κ` — the PCR scaling factor (Eq. 16, from `crn-interference`),
//! - `Δ` — the collection tree's maximum degree (Lemma 6 bounds it by
//!   `log n + πr²(e²−1)/(2c₀)` w.h.p.),
//! - `p_o` — Lemma 7's expected spectrum-opportunity probability.
//!
//! The headline statements:
//!
//! - **Theorem 1** (per-packet service): any SU with data transmits at
//!   least one packet within `(2Δβ_κ + 24β_{κ+1} − 1)·τ/p_o`.
//! - **Lemma 8** (backbone service): after the dominatee phase, a CDS node
//!   forwards a packet within `(2β_κ + 24β_{κ+1} − 1)·τ/p_o`.
//! - **Theorem 2** (total): collection finishes within
//!   `(2Δβ_κ+24β_{κ+1}−1)·τ/p_o + (n−Δ_b)(2β_κ+24β_{κ+1}−1)·τ/p_o`, so
//!   capacity is `Ω(p_o·W / (2β_κ + 24β_{κ+1} − 1))` — order-optimal.
//!
//! The `validate-bounds` harness in `crn-bench` checks simulated delays
//! against these numbers.
//!
//! # Example
//!
//! ```
//! use crn_interference::{PcrConstants, PhyParams};
//! use crn_theory::DelayBounds;
//!
//! let phy = PhyParams::paper_simulation_defaults();
//! let b = DelayBounds::compute(
//!     &phy,
//!     PcrConstants::Paper,
//!     400.0 / 62_500.0, // PU density N/A
//!     0.3,              // p_t
//!     2000,             // n
//!     31.25,            // c0 = A/n
//!     20,               // observed tree Δ
//!     5,                // observed Δ_b
//! );
//! assert!(b.theorem2_delay_slots > b.theorem1_service_slots);
//! assert!(b.capacity_fraction_lower > 0.0 && b.capacity_fraction_lower < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crn_geometry::packing::beta;
use crn_interference::{pcr, PcrConstants, PhyParams};
use crn_spectrum::opportunity;
use serde::{Deserialize, Serialize};

/// Lemma 5: the number of dominators and connectors within an SU's PCR is
/// at most `β_κ + 12·β_{κ+1}`.
///
/// # Panics
///
/// Panics if `kappa` is negative or non-finite.
#[must_use]
pub fn lemma5_cds_nodes_in_pcr(kappa: f64) -> f64 {
    beta(kappa) + 12.0 * beta(kappa + 1.0)
}

/// Lemma 6: the number of SUs within an SU's PCR is at most
/// `Δ·β_κ + 12·β_{κ+1}`, with `Δ` the tree's maximum degree.
///
/// # Panics
///
/// Panics if `kappa` is negative or non-finite.
#[must_use]
pub fn lemma6_sus_in_pcr(kappa: f64, delta: usize) -> f64 {
    delta as f64 * beta(kappa) + 12.0 * beta(kappa + 1.0)
}

/// Lemma 6's high-probability bound on the tree degree itself:
/// `Δ ≤ log n + πr²(e²−1)/(2c₀)` where `c₀ = A/n`.
///
/// # Panics
///
/// Panics unless `n ≥ 1`, `r > 0`, and `c0 > 0`.
#[must_use]
pub fn lemma6_delta_bound(n: usize, r: f64, c0: f64) -> f64 {
    assert!(n >= 1, "n must be at least 1");
    assert!(r > 0.0 && c0 > 0.0, "r and c0 must be positive");
    (n as f64).ln()
        + std::f64::consts::PI * r * r * (std::f64::consts::E.powi(2) - 1.0) / (2.0 * c0)
}

/// The recurring contention factor `2Δβ_κ + 24β_{κ+1} − 1` of Theorem 1.
#[must_use]
pub fn theorem1_contention_factor(kappa: f64, delta: usize) -> f64 {
    2.0 * delta as f64 * beta(kappa) + 24.0 * beta(kappa + 1.0) - 1.0
}

/// The backbone contention factor `2β_κ + 24β_{κ+1} − 1` of Lemma 8 /
/// Theorem 2.
#[must_use]
pub fn lemma8_contention_factor(kappa: f64) -> f64 {
    2.0 * beta(kappa) + 24.0 * beta(kappa + 1.0) - 1.0
}

/// Theorem 1 in slots: upper bound on the expected time for any SU with
/// data to push one packet to its parent.
///
/// # Panics
///
/// Panics unless `0 < p_o ≤ 1`.
#[must_use]
pub fn theorem1_service_slots(kappa: f64, delta: usize, p_o: f64) -> f64 {
    assert!(p_o > 0.0 && p_o <= 1.0, "p_o must be in (0,1], got {p_o}");
    theorem1_contention_factor(kappa, delta) / p_o
}

/// Lemma 8 in slots: upper bound on the expected per-packet forwarding
/// time of a CDS node once only the backbone holds data.
///
/// # Panics
///
/// Panics unless `0 < p_o ≤ 1`.
#[must_use]
pub fn lemma8_service_slots(kappa: f64, p_o: f64) -> f64 {
    assert!(p_o > 0.0 && p_o <= 1.0, "p_o must be in (0,1], got {p_o}");
    lemma8_contention_factor(kappa) / p_o
}

/// Theorem 2 in slots: upper bound on the expected total data collection
/// delay, `theorem1 + (n − Δ_b)·lemma8`.
///
/// # Panics
///
/// Panics unless `0 < p_o ≤ 1`.
#[must_use]
pub fn theorem2_delay_slots(kappa: f64, delta: usize, delta_b: usize, n: usize, p_o: f64) -> f64 {
    let tail = n.saturating_sub(delta_b) as f64 * lemma8_service_slots(kappa, p_o);
    theorem1_service_slots(kappa, delta, p_o) + tail
}

/// Theorem 2's capacity lower bound as a fraction of the bandwidth `W`:
/// `p_o / (2β_κ + 24β_{κ+1} − 1)`.
///
/// # Panics
///
/// Panics unless `0 < p_o ≤ 1`.
#[must_use]
pub fn theorem2_capacity_fraction(kappa: f64, p_o: f64) -> f64 {
    assert!(p_o > 0.0 && p_o <= 1.0, "p_o must be in (0,1], got {p_o}");
    p_o / lemma8_contention_factor(kappa)
}

/// Every bound of Section IV-D evaluated for one scenario — the
/// validation artifact the `validate-bounds` harness prints.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayBounds {
    /// PCR scaling factor κ.
    pub kappa: f64,
    /// Lemma 7's expected opportunity probability.
    pub p_o: f64,
    /// Lemma 5 bound.
    pub lemma5_cds_nodes: f64,
    /// Lemma 6 bound (with the observed Δ).
    pub lemma6_sus: f64,
    /// Lemma 6's w.h.p. bound on Δ itself.
    pub delta_whp_bound: f64,
    /// Theorem 1 per-packet service bound, in slots.
    pub theorem1_service_slots: f64,
    /// Lemma 8 backbone service bound, in slots.
    pub lemma8_service_slots: f64,
    /// Theorem 2 total delay bound, in slots.
    pub theorem2_delay_slots: f64,
    /// Theorem 2 capacity lower bound, as a fraction of `W`.
    pub capacity_fraction_lower: f64,
}

impl DelayBounds {
    /// Evaluates all bounds from physical parameters and scenario facts.
    ///
    /// `pu_density` is `N/A`, `c0` is the paper's area-per-SU constant
    /// `A/n`, and `delta`/`delta_b` are the observed tree degrees (compare
    /// them with [`lemma6_delta_bound`], reported as
    /// [`DelayBounds::delta_whp_bound`]).
    ///
    /// # Panics
    ///
    /// Panics if the parameters put `p_o` at 0 (e.g. `p_t = 1` with PUs in
    /// range) — the paper's bounds require a positive access probability —
    /// or if `c0 ≤ 0`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        phy: &PhyParams,
        constants: PcrConstants,
        pu_density: f64,
        p_t: f64,
        n: usize,
        c0: f64,
        delta: usize,
        delta_b: usize,
    ) -> Self {
        let kappa = pcr::kappa(phy, constants);
        let range = pcr::carrier_sensing_range(phy, constants);
        let p_o = opportunity::expected_probability(p_t, pu_density, range);
        assert!(
            p_o > 0.0,
            "p_o = 0: the paper's bounds need a positive access probability"
        );
        Self {
            kappa,
            p_o,
            lemma5_cds_nodes: lemma5_cds_nodes_in_pcr(kappa),
            lemma6_sus: lemma6_sus_in_pcr(kappa, delta),
            delta_whp_bound: lemma6_delta_bound(n.max(1), phy.su_radius(), c0),
            theorem1_service_slots: theorem1_service_slots(kappa, delta, p_o),
            lemma8_service_slots: lemma8_service_slots(kappa, p_o),
            theorem2_delay_slots: theorem2_delay_slots(kappa, delta, delta_b, n, p_o),
            capacity_fraction_lower: theorem2_capacity_fraction(kappa, p_o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phy() -> PhyParams {
        PhyParams::paper_simulation_defaults()
    }

    #[test]
    fn lemma5_matches_hand_formula() {
        let k = 2.5;
        let expect = beta(k) + 12.0 * beta(k + 1.0);
        assert_eq!(lemma5_cds_nodes_in_pcr(k), expect);
    }

    #[test]
    fn lemma6_grows_with_delta() {
        assert!(lemma6_sus_in_pcr(2.5, 10) > lemma6_sus_in_pcr(2.5, 5));
    }

    #[test]
    fn lemma6_delta_bound_is_logarithmic_in_n() {
        let a = lemma6_delta_bound(1000, 10.0, 31.25);
        let b = lemma6_delta_bound(2000, 10.0, 31.25);
        assert!((b - a - 2.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn theorem1_scales_inversely_with_p_o() {
        let a = theorem1_service_slots(2.5, 10, 0.5);
        let b = theorem1_service_slots(2.5, 10, 0.25);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem1_exceeds_lemma8_for_delta_above_one() {
        assert!(theorem1_service_slots(2.5, 5, 0.3) > lemma8_service_slots(2.5, 0.3));
        // Delta = 1 degenerates to the same factor.
        assert!((theorem1_contention_factor(2.5, 1) - lemma8_contention_factor(2.5)).abs() < 1e-9);
    }

    #[test]
    fn theorem2_is_linear_in_n() {
        let d1 = theorem2_delay_slots(2.5, 10, 4, 1000, 0.1);
        let d2 = theorem2_delay_slots(2.5, 10, 4, 2000, 0.1);
        let per_node = lemma8_service_slots(2.5, 0.1);
        assert!((d2 - d1 - 1000.0 * per_node).abs() < 1e-6);
    }

    #[test]
    fn capacity_bound_consistent_with_delay_bound() {
        // capacity_fraction ~ n / theorem2_delay for large n.
        let n = 100_000;
        let cap = theorem2_capacity_fraction(2.5, 0.2);
        let delay = theorem2_delay_slots(2.5, 10, 4, n, 0.2);
        let implied = n as f64 / delay;
        assert!(
            (implied / cap - 1.0).abs() < 0.01,
            "implied {implied} cap {cap}"
        );
    }

    #[test]
    fn capacity_below_channel_bound() {
        // The achievable fraction can never exceed W (fraction 1).
        for kappa in [2.0, 2.5, 4.0] {
            for p_o in [0.01, 0.3, 1.0] {
                assert!(theorem2_capacity_fraction(kappa, p_o) <= 1.0);
            }
        }
    }

    #[test]
    fn compute_bundles_everything() {
        let b = DelayBounds::compute(&phy(), PcrConstants::Paper, 0.0064, 0.3, 2000, 31.25, 20, 5);
        assert!(b.kappa > 1.0);
        assert!(b.p_o > 0.0 && b.p_o < 1.0);
        assert!(b.theorem2_delay_slots > b.theorem1_service_slots);
        assert!(b.lemma5_cds_nodes < b.lemma6_sus);
    }

    #[test]
    #[should_panic(expected = "p_o")]
    fn zero_p_o_rejected() {
        let _ = theorem1_service_slots(2.5, 10, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive access probability")]
    fn saturated_pus_rejected_in_compute() {
        let _ = DelayBounds::compute(&phy(), PcrConstants::Paper, 0.0064, 1.0, 2000, 31.25, 20, 5);
    }
}
