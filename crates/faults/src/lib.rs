//! Fault injection and network dynamics for the ADDC reproduction.
//!
//! The paper's setting is an *asynchronous* cognitive radio network:
//! spectrum availability and node participation change underneath the
//! protocol. This crate models that churn as data — a deterministic,
//! seeded [`FaultPlan`] of schedulable events (SU crash/recover,
//! SU pause/resume, PU regime shifts `p_t → p_t'`, per-link path-gain
//! degradation, and base-station brownout windows) — that the simulator
//! (`crn-sim`) compiles into timer events on its own queue. Nothing here
//! touches an RNG unless a plan is *generated* (the churn preset); an
//! empty plan is guaranteed inert, so fault-free runs reproduce the
//! fault-unaware simulator bit for bit.
//!
//! # Example
//!
//! ```
//! use crn_faults::{FaultEvent, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::from_events(vec![
//!     FaultEvent::new(0.050, FaultKind::SuCrash { su: 3 }),
//!     FaultEvent::new(0.120, FaultKind::SuRecover { su: 3 }),
//! ]);
//! let schedule = plan.compile().unwrap();
//! assert_eq!(schedule.len(), 2);
//! assert!(FaultPlan::empty().compile().unwrap().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod plan;

pub use churn::ChurnSpec;
pub use plan::{FaultError, FaultEvent, FaultKind, FaultPlan, FaultSchedule};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How a scenario acquires its fault workload: none (the default, inert),
/// an explicit [`FaultPlan`], or a seeded churn generator resolved against
/// the scenario's own size, slot length, and seed at run time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum FaultsConfig {
    /// No faults; runs are bit-for-bit the fault-unaware simulation.
    #[default]
    None,
    /// An explicit, author-written plan (times in seconds).
    Plan(FaultPlan),
    /// Random node churn generated deterministically from the scenario
    /// seed (see [`ChurnSpec`]).
    Churn(ChurnSpec),
}

impl FaultsConfig {
    /// Whether this configuration injects nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, FaultsConfig::None)
    }

    /// Resolves the configuration into a compiled, time-sorted schedule
    /// for a scenario with `num_sus` secondary users (node ids `1..=n`),
    /// MAC slot length `slot` (seconds), and master seed `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError`] if an explicit plan fails validation or the
    /// churn spec is malformed.
    pub fn resolve(
        &self,
        num_sus: usize,
        slot: f64,
        seed: u64,
    ) -> Result<FaultSchedule, FaultError> {
        match self {
            FaultsConfig::None => Ok(FaultSchedule::empty()),
            FaultsConfig::Plan(plan) => plan.compile(),
            FaultsConfig::Churn(spec) => spec.generate(num_sus, slot, seed)?.compile(),
        }
    }
}

impl fmt::Display for FaultsConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultsConfig::None => f.write_str("none"),
            FaultsConfig::Plan(plan) => write!(f, "plan({} events)", plan.events().len()),
            FaultsConfig::Churn(spec) => write!(f, "churn:{}", spec.rate_per_1k_slots),
        }
    }
}

impl FromStr for FaultsConfig {
    type Err = String;

    /// Parses the CLI/protocol preset grammar: `"none"` or `"churn:RATE"`
    /// (expected crash events per 1000 slots, e.g. `churn:2`). Explicit
    /// plans travel as JSON, not through this parser.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("none") {
            return Ok(FaultsConfig::None);
        }
        if let Some(rate) = s.strip_prefix("churn:") {
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("bad churn rate {rate:?}"))?;
            let spec = ChurnSpec::new(rate).map_err(|e| e.to_string())?;
            return Ok(FaultsConfig::Churn(spec));
        }
        Err(format!(
            "unknown fault preset {s:?} (expected none or churn:RATE)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none_and_inert() {
        let c = FaultsConfig::default();
        assert!(c.is_none());
        assert!(c.resolve(50, 1e-3, 7).unwrap().is_empty());
    }

    #[test]
    fn preset_grammar_round_trips() {
        assert_eq!("none".parse::<FaultsConfig>().unwrap(), FaultsConfig::None);
        let c: FaultsConfig = "churn:2.5".parse().unwrap();
        assert_eq!(c.to_string(), "churn:2.5");
        let again: FaultsConfig = c.to_string().parse().unwrap();
        assert_eq!(again, c);
        assert!("churn:x".parse::<FaultsConfig>().is_err());
        assert!("meteor".parse::<FaultsConfig>().is_err());
        assert!("churn:-1".parse::<FaultsConfig>().is_err());
    }

    #[test]
    fn churn_resolution_is_seed_deterministic() {
        let c: FaultsConfig = "churn:5".parse().unwrap();
        let a = c.resolve(40, 1e-3, 11).unwrap();
        let b = c.resolve(40, 1e-3, 11).unwrap();
        assert_eq!(a.events(), b.events());
        let other = c.resolve(40, 1e-3, 12).unwrap();
        assert_ne!(a.events(), other.events());
    }

    #[test]
    fn plan_config_compiles_through_resolve() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent::new(0.2, FaultKind::SuRecover { su: 4 }),
            FaultEvent::new(0.1, FaultKind::SuCrash { su: 4 }),
        ]);
        let c = FaultsConfig::Plan(plan);
        let sched = c.resolve(10, 1e-3, 0).unwrap();
        assert_eq!(sched.len(), 2);
        assert!(sched.events()[0].time < sched.events()[1].time);
        assert_eq!(c.to_string(), "plan(2 events)");
    }
}
