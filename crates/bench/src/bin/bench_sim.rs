//! Emits `results/BENCH_sim.json`: dense-vs-sparse interference-engine
//! scaling on the deterministic synthetic grid world, plus the
//! topology/radio phase split.
//!
//! For each size `n` the harness times the structure phase (`Topology`
//! build) once, then per interference model times radio customization
//! (`SimWorld::new` on the shared topology), measures event throughput
//! of a short capped run (`Exact` dense tables are skipped above
//! `n = 5000`, where they would need gigabytes), and records the
//! gain-table footprint plus a peak-RSS proxy (`VmHWM` from
//! `/proc/self/status`).
//!
//! It also times the headline of the split API: a radio-only
//! re-customization (an SU transmit-power bump) against a full
//! from-scratch rebuild at the new parameters, asserting along the way
//! that both worlds produce bit-identical reports.
//!
//! Flags: `--smoke` (tiny sizes, for CI PR runs), `--out FILE` (default
//! `results/BENCH_sim.json`).
//!
//! Run with `cargo run -p crn-bench --release --bin bench_sim`.

use crn_bench::synthetic::{grid_radio, grid_topology};
use crn_bench::take_flag;
use crn_interference::PhyParams;
use crn_sim::{InterferenceModel, MacConfig, SimWorld, Simulator, Topology, TraceLog};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Truncation budget used throughout (the equivalence-tested default).
const EPSILON: f64 = 0.1;
/// Dense tables above this size would need gigabytes; sparse-only beyond.
const DENSE_CAP: usize = 5_000;

struct ModelStats {
    construct_ms: f64,
    customize_s: f64,
    recustomize_s: f64,
    rebuild_s: f64,
    recustomize_speedup: f64,
    gain_table_bytes: usize,
    events: u64,
    events_per_sec: f64,
}

struct SizeStats {
    n: usize,
    topology_build_s: f64,
    dense: Option<ModelStats>,
    sparse: ModelStats,
    vm_hwm_kb: Option<u64>,
}

/// Copies `phy` with the SU transmit power raised by half — a pure radio
/// value change the customization layer absorbs without rebuilding any
/// structure.
fn bump_su_power(phy: &PhyParams) -> PhyParams {
    let mut b = PhyParams::builder();
    b.alpha(phy.alpha())
        .pu_power(phy.pu_power())
        .su_power(phy.su_power() * 1.5)
        .pu_radius(phy.pu_radius())
        .su_radius(phy.su_radius())
        .pu_sir_threshold(phy.pu_sir_threshold())
        .su_sir_threshold(phy.su_sir_threshold());
    b.build().expect("bumped phy stays valid")
}

fn capped_run(world: SimWorld, sim_seconds: f64) -> (crn_sim::SimReport, u64) {
    let mac = MacConfig {
        max_sim_time: sim_seconds,
        ..MacConfig::default()
    };
    let (report, trace) = Simulator::builder(world)
        .mac(mac)
        .seed(42)
        .probe(TraceLog::bounded(64))
        .build()
        .unwrap()
        .run_with_probe();
    let events = trace.len() as u64 + trace.dropped();
    (report, events)
}

fn measure(
    n: usize,
    topology: &Arc<Topology>,
    topology_build_s: f64,
    model: InterferenceModel,
    sim_seconds: f64,
) -> ModelStats {
    let params = grid_radio(model);
    let started = Instant::now();
    let world = SimWorld::new(topology.clone(), params).expect("grid radio params are valid");
    let customize_s = started.elapsed().as_secs_f64();
    let gain_table_bytes = world.gain_table_bytes();

    // Radio-only re-customization vs a full from-scratch rebuild at the
    // same new parameters.
    let bumped = params.phy(bump_su_power(&params.phy));
    let started = Instant::now();
    let recustomized = world
        .recustomize(bumped)
        .expect("power-only recustomize succeeds");
    let recustomize_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let rebuilt =
        SimWorld::new(Arc::new(grid_topology(n)), bumped).expect("rebuilt grid world is valid");
    let rebuild_s = started.elapsed().as_secs_f64();

    // Both paths must agree bit-for-bit before either timing counts.
    let equiv_seconds = sim_seconds.min(0.05);
    let (from_recustomize, _) = capped_run(recustomized, equiv_seconds);
    let (from_rebuild, _) = capped_run(rebuilt, equiv_seconds);
    assert_eq!(
        from_recustomize, from_rebuild,
        "recustomized world diverged from a fresh build at n = {n}"
    );

    let started = Instant::now();
    let (report, events) = capped_run(world, sim_seconds);
    let wall = started.elapsed().as_secs_f64();
    assert!(report.attempts > 0, "capped run must make progress");
    ModelStats {
        construct_ms: (topology_build_s + customize_s) * 1e3,
        customize_s,
        recustomize_s,
        rebuild_s,
        recustomize_speedup: rebuild_s / recustomize_s.max(1e-9),
        gain_table_bytes,
        events,
        events_per_sec: events as f64 / wall.max(1e-9),
    }
}

/// Peak resident set size in kB (`VmHWM`), where procfs exists.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn model_json(stats: &ModelStats) -> String {
    format!(
        "{{\"construct_ms\": {:.3}, \"customize_s\": {:.6}, \"recustomize_s\": {:.6}, \
         \"rebuild_s\": {:.6}, \"recustomize_speedup\": {:.1}, \"gain_table_bytes\": {}, \
         \"events\": {}, \"events_per_sec\": {:.0}}}",
        stats.construct_ms,
        stats.customize_s,
        stats.recustomize_s,
        stats.rebuild_s,
        stats.recustomize_speedup,
        stats.gain_table_bytes,
        stats.events,
        stats.events_per_sec
    )
}

fn render_json(mode: &str, sizes: &[SizeStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"sim_interference_scaling\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"epsilon\": {EPSILON},");
    let _ = writeln!(out, "  \"sizes\": [");
    for (i, s) in sizes.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"n\": {},", s.n);
        let _ = writeln!(
            out,
            "      \"topology_build_s\": {:.6},",
            s.topology_build_s
        );
        match &s.dense {
            Some(d) => {
                let _ = writeln!(out, "      \"dense\": {},", model_json(d));
                let _ = writeln!(
                    out,
                    "      \"construct_speedup\": {:.2},",
                    d.construct_ms / s.sparse.construct_ms.max(1e-9)
                );
                let _ = writeln!(
                    out,
                    "      \"memory_ratio\": {:.2},",
                    d.gain_table_bytes as f64 / s.sparse.gain_table_bytes.max(1) as f64
                );
            }
            None => {
                let _ = writeln!(out, "      \"dense\": null,");
                let _ = writeln!(out, "      \"construct_speedup\": null,");
                let _ = writeln!(out, "      \"memory_ratio\": null,");
            }
        }
        let _ = writeln!(out, "      \"sparse\": {},", model_json(&s.sparse));
        match s.vm_hwm_kb {
            Some(kb) => {
                let _ = writeln!(out, "      \"vm_hwm_kb\": {kb}");
            }
            None => {
                let _ = writeln!(out, "      \"vm_hwm_kb\": null");
            }
        }
        let comma = if i + 1 < sizes.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let out_path = take_flag(&mut args, "--out").unwrap_or_else(|| "results/BENCH_sim.json".into());
    assert!(args.is_empty(), "unrecognized arguments: {args:?}");

    let (mode, ns, sim_seconds) = if smoke {
        ("smoke", vec![200usize, 500], 0.02)
    } else {
        ("full", vec![500usize, 2_000, 5_000, 10_000], 0.2)
    };

    let mut sizes = Vec::new();
    for &n in &ns {
        eprintln!("bench_sim: n = {n} ...");
        let started = Instant::now();
        let topology = Arc::new(grid_topology(n));
        let topology_build_s = started.elapsed().as_secs_f64();
        let model = InterferenceModel::Truncated { epsilon: EPSILON };
        let sparse = measure(n, &topology, topology_build_s, model, sim_seconds);
        let dense = (n <= DENSE_CAP).then(|| {
            measure(
                n,
                &topology,
                topology_build_s,
                InterferenceModel::Exact,
                sim_seconds,
            )
        });
        sizes.push(SizeStats {
            n,
            topology_build_s,
            dense,
            sparse,
            vm_hwm_kb: vm_hwm_kb(),
        });
    }

    let json = render_json(mode, &sizes);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("bench_sim: wrote {out_path}");
    print!("{json}");
}
