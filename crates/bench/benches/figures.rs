//! One Criterion benchmark per paper figure: `fig4` measures the
//! closed-form PCR generation; `fig6a`..`fig6f` each measure one
//! representative simulated point of that panel (tiny preset, ADDC and
//! Coolest paired as in the paper).
//!
//! These benches exist to (1) regenerate each figure's computation in a
//! measured loop and (2) catch performance regressions in the simulator;
//! the full sweeps live in the `fig6` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use crn_core::{CollectionAlgorithm, Scenario};
use crn_interference::PcrConstants;
use crn_workloads::{presets, Fig6Panel, PresetKind};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4", |b| {
        b.iter(|| {
            let rows = crn_workloads::fig4::fig4_rows(black_box(PcrConstants::Paper));
            black_box(rows)
        });
    });
}

fn bench_fig6_panel(c: &mut Criterion, panel: Fig6Panel) {
    // One representative point: the middle of the panel's axis, 1 rep,
    // both algorithms (paired, as the figures plot them).
    let spec = presets::fig6_spec(PresetKind::Tiny, panel);
    let mid = spec.axis.values[spec.axis.values.len() / 2];
    let params = spec.axis.apply(&spec.base, mid);
    let scenario = Scenario::generate(&params).expect("connected scenario");
    c.bench_function(panel.figure_id(), |b| {
        b.iter(|| {
            let addc = scenario.run(CollectionAlgorithm::Addc).expect("addc run");
            let cool = scenario
                .run(CollectionAlgorithm::Coolest)
                .expect("coolest run");
            black_box((addc.report.delay_slots, cool.report.delay_slots))
        });
    });
}

fn bench_figures(c: &mut Criterion) {
    bench_fig4(c);
    for panel in Fig6Panel::ALL {
        bench_fig6_panel(c, panel);
    }
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(4));
    targets = bench_figures
}
criterion_main!(figures);
